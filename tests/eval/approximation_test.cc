#include "eval/approximation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace traj2hash::eval {
namespace {

TEST(CompareDistancesTest, RejectsBadInput) {
  EXPECT_FALSE(CompareDistances({1.0}, {1.0}).ok());
  EXPECT_FALSE(CompareDistances({1.0, 2.0}, {1.0}).ok());
}

TEST(CompareDistancesTest, PerfectAgreement) {
  const std::vector<double> exact = {1.0, 5.0, 3.0, 8.0, 2.0};
  const auto stats = CompareDistances(exact, exact).value();
  EXPECT_NEAR(stats.spearman, 1.0, 1e-12);
  EXPECT_EQ(stats.discordance, 0.0);
}

TEST(CompareDistancesTest, MonotoneCalibrationInvariance) {
  // exp(-d) is a decreasing transform; negate to make it increasing, or
  // verify the rank correlation is exactly -1 for the raw transform.
  const std::vector<double> exact = {1.0, 5.0, 3.0, 8.0, 2.0};
  std::vector<double> approx;
  for (const double d : exact) approx.push_back(std::exp(-0.3 * d));
  const auto stats = CompareDistances(exact, approx).value();
  EXPECT_NEAR(stats.spearman, -1.0, 1e-12);
  EXPECT_NEAR(stats.discordance, 1.0, 1e-12);
}

TEST(CompareDistancesTest, ReversedOrderIsMinusOne) {
  const std::vector<double> exact = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> approx = {4.0, 3.0, 2.0, 1.0};
  const auto stats = CompareDistances(exact, approx).value();
  EXPECT_NEAR(stats.spearman, -1.0, 1e-12);
}

TEST(CompareDistancesTest, IndependentSamplesNearZero) {
  Rng rng(1);
  std::vector<double> exact, approx;
  for (int i = 0; i < 2000; ++i) {
    exact.push_back(rng.Uniform(0.0, 1.0));
    approx.push_back(rng.Uniform(0.0, 1.0));
  }
  const auto stats = CompareDistances(exact, approx).value();
  EXPECT_LT(std::abs(stats.spearman), 0.1);
  EXPECT_NEAR(stats.discordance, 0.5, 0.1);
}

TEST(CompareDistancesTest, TiesHandledByAverageRanks) {
  const std::vector<double> exact = {1.0, 1.0, 2.0, 2.0};
  const std::vector<double> approx = {3.0, 3.0, 7.0, 7.0};
  const auto stats = CompareDistances(exact, approx).value();
  EXPECT_NEAR(stats.spearman, 1.0, 1e-12);
}

TEST(UpperTriangleTest, ExtractsStrictUpperRowMajor) {
  // 3x3 matrix with distinct entries.
  const std::vector<double> m = {0, 1, 2,  //
                                 1, 0, 3,  //
                                 2, 3, 0};
  EXPECT_EQ(UpperTriangle(m, 3), (std::vector<double>{1, 2, 3}));
}

TEST(PairwiseEuclideanTest, MatchesHandComputation) {
  const std::vector<std::vector<float>> e = {{0, 0}, {3, 4}, {0, 8}};
  const auto d = PairwiseEuclidean(e);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 5.0);  // (0,0)-(3,4)
  EXPECT_DOUBLE_EQ(d[1], 8.0);  // (0,0)-(0,8)
  EXPECT_DOUBLE_EQ(d[2], 5.0);  // (3,4)-(0,8)
}

}  // namespace
}  // namespace traj2hash::eval
