#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace traj2hash::eval {
namespace {

TEST(HitRatioTest, FullPartialAndNoOverlap) {
  const std::vector<int> truth = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(HitRatio({1, 2, 3, 4, 5}, truth, 5), 1.0);
  EXPECT_DOUBLE_EQ(HitRatio({1, 2, 9, 8, 7}, truth, 5), 0.4);
  EXPECT_DOUBLE_EQ(HitRatio({9, 8, 7, 6, 0}, truth, 5), 0.0);
}

TEST(HitRatioTest, UsesOnlyTopKPrefix) {
  const std::vector<int> truth = {1, 2, 3, 4};
  // Retrieved has the right ids but beyond position k.
  EXPECT_DOUBLE_EQ(HitRatio({9, 8, 1, 2}, truth, 2), 0.0);
  EXPECT_DOUBLE_EQ(HitRatio({1, 9, 8, 2}, truth, 2), 0.5);
}

TEST(HitRatioTest, ShortListsDenominatorStaysK) {
  EXPECT_DOUBLE_EQ(HitRatio({1}, {1, 2, 3}, 3), 1.0 / 3.0);
}

TEST(RecallTopKTest, R10At50Semantics) {
  std::vector<int> truth;
  for (int i = 0; i < 10; ++i) truth.push_back(i);
  std::vector<int> retrieved;
  for (int i = 100; i < 145; ++i) retrieved.push_back(i);
  retrieved.push_back(3);  // one top-10 truth item inside top-50 retrieved
  EXPECT_DOUBLE_EQ(RecallTopK(retrieved, truth, 10, 50), 0.1);
}

TEST(ExactTopKTest, ReturnsNearestIdsInOrder) {
  using traj::Point;
  using traj::Trajectory;
  auto line = [](double offset) {
    Trajectory t;
    t.points = {{0, offset}, {10, offset}};
    return t;
  };
  const std::vector<Trajectory> db = {line(0), line(5), line(1), line(20)};
  const std::vector<Trajectory> queries = {line(0.2)};
  const auto truth = ExactTopK(
      queries, db, dist::GetDistance(dist::Measure::kFrechet), 3);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0], (std::vector<int>{0, 2, 1}));
}

TEST(EvaluateEuclideanTest, PerfectEmbeddingScoresOne) {
  // Database embeddings = 1-D positions; queries identical to db entries.
  std::vector<std::vector<float>> db;
  for (int i = 0; i < 60; ++i) db.push_back({static_cast<float>(i)});
  std::vector<std::vector<int>> truth;
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 5; ++q) {
    queries.push_back({static_cast<float>(q * 10)});
    // Ground truth = ids ordered by |i - q*10| with index tie-break.
    std::vector<std::pair<double, int>> scored;
    for (int i = 0; i < 60; ++i) {
      scored.push_back({std::abs(i - q * 10), i});
    }
    std::sort(scored.begin(), scored.end());
    std::vector<int> ids;
    for (int i = 0; i < 50; ++i) ids.push_back(scored[i].second);
    truth.push_back(ids);
  }
  const RetrievalMetrics m = EvaluateEuclidean(queries, db, truth);
  EXPECT_DOUBLE_EQ(m.hr10, 1.0);
  EXPECT_DOUBLE_EQ(m.hr50, 1.0);
  EXPECT_DOUBLE_EQ(m.r10_50, 1.0);
}

TEST(EvaluateHammingTest, RandomCodesScoreLow) {
  Rng rng(1);
  auto random_code = [&rng] {
    std::vector<float> v(32);
    for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    return search::PackSigns(v);
  };
  std::vector<search::Code> db;
  for (int i = 0; i < 200; ++i) db.push_back(random_code());
  std::vector<search::Code> queries;
  std::vector<std::vector<int>> truth;
  Rng truth_rng(2);
  for (int q = 0; q < 10; ++q) {
    queries.push_back(random_code());
    std::vector<int> ids;  // arbitrary truth unrelated to the codes
    for (int i = 0; i < 50; ++i) {
      ids.push_back(truth_rng.UniformInt(0, 199));
    }
    truth.push_back(ids);
  }
  const RetrievalMetrics m = EvaluateHamming(queries, db, truth);
  EXPECT_LT(m.hr10, 0.6);  // random agreement only
}

TEST(EvaluateTest, EmptyQueriesGiveZeroMetrics) {
  const RetrievalMetrics m = EvaluateEuclidean({}, {}, {});
  EXPECT_DOUBLE_EQ(m.hr10, 0.0);
  EXPECT_DOUBLE_EQ(m.hr50, 0.0);
  EXPECT_DOUBLE_EQ(m.r10_50, 0.0);
}

}  // namespace
}  // namespace traj2hash::eval
