#include "distance/distance.h"

#include <cmath>

#include <gtest/gtest.h>

namespace traj2hash::dist {
namespace {

using traj::Point;
using traj::Trajectory;

Trajectory MakeTraj(std::vector<Point> pts) {
  Trajectory t;
  t.points = std::move(pts);
  return t;
}

TEST(DtwTest, IdenticalTrajectoriesHaveZeroDistance) {
  const Trajectory t = MakeTraj({{0, 0}, {1, 1}, {2, 0}});
  EXPECT_DOUBLE_EQ(Dtw(t, t), 0.0);
}

TEST(DtwTest, SinglePointPairs) {
  const Trajectory a = MakeTraj({{0, 0}});
  const Trajectory b = MakeTraj({{3, 4}});
  EXPECT_DOUBLE_EQ(Dtw(a, b), 5.0);
}

TEST(DtwTest, HandComputedValue) {
  // a: (0,0),(1,0); b: (0,1). Alignment matches both a-points to b's point.
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}});
  const Trajectory b = MakeTraj({{0, 1}});
  EXPECT_DOUBLE_EQ(Dtw(a, b), 1.0 + std::sqrt(2.0));
}

TEST(DtwTest, WarpingAbsorbsResampling) {
  // A trajectory and a doubled version of itself are DTW-identical.
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b =
      MakeTraj({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {2, 0}, {2, 0}});
  EXPECT_DOUBLE_EQ(Dtw(a, b), 0.0);
}

TEST(ConstrainedDtwTest, NegativeWindowEqualsExact) {
  const Trajectory a = MakeTraj({{0, 0}, {5, 1}, {9, 2}, {12, 0}});
  const Trajectory b = MakeTraj({{1, 0}, {4, 2}, {8, 1}});
  EXPECT_DOUBLE_EQ(ConstrainedDtw(a, b, -1), Dtw(a, b));
}

TEST(ConstrainedDtwTest, WindowIsUpperBoundedByExact) {
  // Constraining the warping path can only increase the cost.
  const Trajectory a =
      MakeTraj({{0, 0}, {1, 3}, {2, 0}, {3, 3}, {4, 0}, {5, 3}});
  const Trajectory b = MakeTraj({{0, 3}, {2, 2}, {5, 0}});
  const double exact = Dtw(a, b);
  for (const int w : {0, 1, 2, 3, 10}) {
    EXPECT_GE(ConstrainedDtw(a, b, w) + 1e-9, exact) << "window " << w;
  }
}

TEST(FrechetTest, IdenticalTrajectoriesHaveZeroDistance) {
  const Trajectory t = MakeTraj({{0, 0}, {1, 1}, {2, 0}});
  EXPECT_DOUBLE_EQ(Frechet(t, t), 0.0);
}

TEST(FrechetTest, ParallelLinesDistance) {
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = MakeTraj({{0, 2}, {1, 2}, {2, 2}});
  EXPECT_DOUBLE_EQ(Frechet(a, b), 2.0);
}

TEST(FrechetTest, IsMaxNotSum) {
  // One far point dominates; adding close points does not change it.
  const Trajectory a = MakeTraj({{0, 0}, {10, 0}});
  const Trajectory b = MakeTraj({{0, 0}, {10, 5}});
  EXPECT_DOUBLE_EQ(Frechet(a, b), 5.0);
}

TEST(FrechetTest, LeashCannotBacktrack) {
  // Classic: Frechet >= Hausdorff because ordering matters.
  const Trajectory a = MakeTraj({{0, 0}, {10, 0}, {0, 1}, {10, 1}});
  const Trajectory b = MakeTraj({{10, 0}, {0, 0}, {10, 1}, {0, 1}});
  EXPECT_GE(Frechet(a, b), Hausdorff(a, b));
  EXPECT_GT(Frechet(a, b), 5.0);
}

TEST(HausdorffTest, SymmetricAndZeroOnSelf) {
  const Trajectory a = MakeTraj({{0, 0}, {5, 5}});
  const Trajectory b = MakeTraj({{1, 1}, {4, 4}, {9, 9}});
  EXPECT_DOUBLE_EQ(Hausdorff(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Hausdorff(a, b), Hausdorff(b, a));
}

TEST(HausdorffTest, HandComputedValue) {
  const Trajectory a = MakeTraj({{0, 0}});
  const Trajectory b = MakeTraj({{3, 0}, {0, 4}});
  // Every b-point's nearest a-point is (0,0): directed b->a = 4.
  EXPECT_DOUBLE_EQ(Hausdorff(a, b), 4.0);
}

TEST(HausdorffTest, OrderInvariant) {
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory shuffled = MakeTraj({{2, 0}, {0, 0}, {1, 0}});
  const Trajectory b = MakeTraj({{0, 1}, {5, 2}});
  EXPECT_DOUBLE_EQ(Hausdorff(a, b), Hausdorff(shuffled, b));
}

TEST(ErpTest, MetricIdentityAndSymmetry) {
  const Trajectory a = MakeTraj({{1, 1}, {2, 2}});
  const Trajectory b = MakeTraj({{1, 2}, {3, 1}});
  EXPECT_DOUBLE_EQ(Erp(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Erp(a, b), Erp(b, a));
}

TEST(ErpTest, GapPenaltyForLengthMismatch) {
  const Trajectory a = MakeTraj({{3, 4}});
  const Trajectory b = MakeTraj({{3, 4}, {6, 8}});
  // Best alignment matches (3,4) and gaps (6,8): cost = |(6,8)-g| = 10.
  EXPECT_DOUBLE_EQ(Erp(a, b), 10.0);
}

TEST(ErpTest, TriangleInequalityOnSamples) {
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}});
  const Trajectory b = MakeTraj({{0, 1}, {2, 1}, {3, 3}});
  const Trajectory c = MakeTraj({{5, 5}});
  EXPECT_LE(Erp(a, c), Erp(a, b) + Erp(b, c) + 1e-9);
}

TEST(RegistryTest, ParseAndNames) {
  EXPECT_EQ(ParseMeasure("frechet").value(), Measure::kFrechet);
  EXPECT_EQ(ParseMeasure("hausdorff").value(), Measure::kHausdorff);
  EXPECT_EQ(ParseMeasure("dtw").value(), Measure::kDtw);
  EXPECT_FALSE(ParseMeasure("lcss").ok());
  EXPECT_EQ(MeasureName(Measure::kDtw), "DTW");
  EXPECT_TRUE(HasEndpointLowerBound(Measure::kDtw));
  EXPECT_TRUE(HasEndpointLowerBound(Measure::kFrechet));
  EXPECT_FALSE(HasEndpointLowerBound(Measure::kHausdorff));
}

TEST(RegistryTest, GetDistanceDispatches) {
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}});
  const Trajectory b = MakeTraj({{0, 2}, {1, 2}});
  EXPECT_DOUBLE_EQ(GetDistance(Measure::kFrechet)(a, b), Frechet(a, b));
  EXPECT_DOUBLE_EQ(GetDistance(Measure::kDtw)(a, b), Dtw(a, b));
  EXPECT_DOUBLE_EQ(GetDistance(Measure::kHausdorff)(a, b), Hausdorff(a, b));
}

TEST(PairwiseMatrixTest, SymmetricZeroDiagonal) {
  std::vector<Trajectory> ts = {MakeTraj({{0, 0}, {1, 0}}),
                                MakeTraj({{0, 1}, {1, 1}}),
                                MakeTraj({{5, 5}, {6, 6}})};
  const std::vector<double> d =
      PairwiseMatrix(ts, GetDistance(Measure::kDtw));
  ASSERT_EQ(d.size(), 9u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(d[i * 3 + i], 0.0);
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(d[i * 3 + j], d[j * 3 + i]);
    }
  }
  EXPECT_GT(d[0 * 3 + 2], d[0 * 3 + 1]);
}

}  // namespace
}  // namespace traj2hash::dist
