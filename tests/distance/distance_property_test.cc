// Property-based sweeps over random trajectory pairs verifying the paper's
// Lemma 1 (endpoint lower bound), Lemma 2 (reverse symmetric property) and
// general metric-style invariants for every measure.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance.h"
#include "traj/synthetic.h"

namespace traj2hash::dist {
namespace {

using traj::Trajectory;

std::vector<Trajectory> RandomTrajectories(int n, uint64_t seed) {
  Rng rng(seed);
  traj::CityConfig cfg = traj::CityConfig::PortoLike();
  cfg.max_points = 24;
  return GenerateTrips(cfg, n, rng);
}

class MeasurePropertyTest : public ::testing::TestWithParam<Measure> {};

TEST_P(MeasurePropertyTest, NonNegativeZeroOnSelfSymmetric) {
  const DistanceFn fn = GetDistance(GetParam());
  const auto ts = RandomTrajectories(12, 101);
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(fn(ts[i], ts[i]), 0.0, 1e-9);
    for (size_t j = i + 1; j < ts.size(); ++j) {
      const double dij = fn(ts[i], ts[j]);
      EXPECT_GE(dij, 0.0);
      EXPECT_NEAR(dij, fn(ts[j], ts[i]), 1e-9);
    }
  }
}

TEST_P(MeasurePropertyTest, ReverseSymmetricProperty) {
  // Lemma 2: D(T1, T2) == D(T1^r, T2^r) for DTW, Frechet, Hausdorff.
  const DistanceFn fn = GetDistance(GetParam());
  const auto ts = RandomTrajectories(10, 202);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      EXPECT_NEAR(fn(ts[i], ts[j]),
                  fn(traj::Reversed(ts[i]), traj::Reversed(ts[j])), 1e-9);
    }
  }
}

TEST_P(MeasurePropertyTest, EndpointLowerBoundHolds) {
  // Lemma 1 for DTW and Frechet. (Not asserted for Hausdorff, where the
  // paper notes it does not apply.)
  if (!HasEndpointLowerBound(GetParam())) GTEST_SKIP();
  const DistanceFn fn = GetDistance(GetParam());
  const auto ts = RandomTrajectories(14, 303);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      EXPECT_LE(EndpointLowerBound(ts[i], ts[j]), fn(ts[i], ts[j]) + 1e-9);
    }
  }
}

TEST_P(MeasurePropertyTest, TranslationInvariant) {
  const DistanceFn fn = GetDistance(GetParam());
  const auto ts = RandomTrajectories(6, 404);
  auto shift = [](const Trajectory& t, double dx, double dy) {
    Trajectory s = t;
    for (traj::Point& p : s.points) {
      p.x += dx;
      p.y += dy;
    }
    return s;
  };
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    const double base = fn(ts[i], ts[i + 1]);
    const double shifted =
        fn(shift(ts[i], 1234.5, -678.9), shift(ts[i + 1], 1234.5, -678.9));
    EXPECT_NEAR(base, shifted, 1e-6 * (1.0 + base));
  }
}

TEST_P(MeasurePropertyTest, ScalesLinearlyWithSpace) {
  const DistanceFn fn = GetDistance(GetParam());
  const auto ts = RandomTrajectories(6, 505);
  auto scale = [](const Trajectory& t, double s) {
    Trajectory out = t;
    for (traj::Point& p : out.points) {
      p.x *= s;
      p.y *= s;
    }
    return out;
  };
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    const double base = fn(ts[i], ts[i + 1]);
    const double doubled = fn(scale(ts[i], 2.0), scale(ts[i + 1], 2.0));
    EXPECT_NEAR(doubled, 2.0 * base, 1e-6 * (1.0 + doubled));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasurePropertyTest,
                         ::testing::Values(Measure::kFrechet,
                                           Measure::kHausdorff, Measure::kDtw),
                         [](const auto& info) {
                           return MeasureName(info.param);
                         });

TEST(DtwFrechetRelationTest, FrechetLowerBoundsDtwForEqualLengths) {
  // DTW sums at least max(n, m) >= 1 step costs each >= 0, and its largest
  // matched pair is >= ... not in general; but DTW >= Frechet always holds
  // since DTW's path sum >= its max edge >= the min-over-paths max edge.
  const auto ts = RandomTrajectories(10, 606);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      EXPECT_GE(Dtw(ts[i], ts[j]) + 1e-9, Frechet(ts[i], ts[j]));
    }
  }
}

TEST(HausdorffFrechetRelationTest, FrechetUpperBoundsHausdorff) {
  const auto ts = RandomTrajectories(10, 707);
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      EXPECT_GE(Frechet(ts[i], ts[j]) + 1e-9, Hausdorff(ts[i], ts[j]));
    }
  }
}

TEST(ConstrainedDtwPropertyTest, MonotoneInWindow) {
  const auto ts = RandomTrajectories(8, 808);
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    double prev = ConstrainedDtw(ts[i], ts[i + 1], 1);
    for (const int w : {2, 4, 8, 16, 32}) {
      const double curr = ConstrainedDtw(ts[i], ts[i + 1], w);
      EXPECT_LE(curr, prev + 1e-9);
      prev = curr;
    }
    EXPECT_NEAR(prev, Dtw(ts[i], ts[i + 1]), 1e-9);  // window >= len
  }
}

}  // namespace
}  // namespace traj2hash::dist
