// Tests for the threshold-based edit measures (LCSS distance and EDR).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance.h"
#include "traj/synthetic.h"

namespace traj2hash::dist {
namespace {

using traj::Point;
using traj::Trajectory;

Trajectory MakeTraj(std::vector<Point> pts) {
  Trajectory t;
  t.points = std::move(pts);
  return t;
}

TEST(LcssTest, IdenticalTrajectoriesHaveZeroDistance) {
  const Trajectory t = MakeTraj({{0, 0}, {10, 0}, {20, 5}});
  EXPECT_DOUBLE_EQ(LcssDistance(t, t, 1.0), 0.0);
}

TEST(LcssTest, DisjointTrajectoriesHaveDistanceOne) {
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}});
  const Trajectory b = MakeTraj({{100, 100}, {200, 200}});
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 5.0), 1.0);
}

TEST(LcssTest, PartialMatchCountsMatchedFraction) {
  const Trajectory a = MakeTraj({{0, 0}, {10, 0}, {20, 0}, {30, 0}});
  const Trajectory b = MakeTraj({{0, 0}, {10, 0}, {500, 0}, {600, 0}});
  // LCSS = 2 of min length 4.
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 1.0), 0.5);
}

TEST(LcssTest, EpsilonControlsMatching) {
  const Trajectory a = MakeTraj({{0, 0}, {10, 0}});
  const Trajectory b = MakeTraj({{0, 3}, {10, 3}});
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 1.0), 1.0);  // 3 m apart, eps 1
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 5.0), 0.0);  // eps 5 matches all
}

TEST(LcssTest, BoundedZeroOne) {
  Rng rng(1);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 20;
  const auto ts = GenerateTrips(city, 10, rng);
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    const double d = LcssDistance(ts[i], ts[i + 1], 200.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(EdrTest, IdenticalTrajectoriesHaveZeroDistance) {
  const Trajectory t = MakeTraj({{0, 0}, {10, 0}, {20, 5}});
  EXPECT_DOUBLE_EQ(Edr(t, t, 1.0), 0.0);
}

TEST(EdrTest, LengthDifferenceCostsInsertions) {
  const Trajectory a = MakeTraj({{0, 0}});
  const Trajectory b = MakeTraj({{0, 0}, {100, 0}, {200, 0}});
  EXPECT_DOUBLE_EQ(Edr(a, b, 1.0), 2.0);
}

TEST(EdrTest, SubstitutionFreeWithinEpsilon) {
  const Trajectory a = MakeTraj({{0, 0}, {10, 0}});
  const Trajectory b = MakeTraj({{0, 0.5}, {10, 0.5}});
  EXPECT_DOUBLE_EQ(Edr(a, b, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Edr(a, b, 0.1), 2.0);
}

TEST(EdrTest, SymmetricOnRandomPairs) {
  Rng rng(2);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 18;
  const auto ts = GenerateTrips(city, 8, rng);
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    EXPECT_DOUBLE_EQ(Edr(ts[i], ts[i + 1], 150.0),
                     Edr(ts[i + 1], ts[i], 150.0));
  }
}

TEST(EdrTest, UpperBoundedBySumOfLengths) {
  const Trajectory a = MakeTraj({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = MakeTraj({{1000, 0}, {1001, 0}});
  // Worst case: substitute min(n,m) and insert the remainder.
  EXPECT_LE(Edr(a, b, 0.5), 3.0);
}

TEST(EditMeasuresTest, ReverseSymmetricPropertyHolds) {
  // LCSS/EDR also satisfy the reverse symmetric property (DP over both
  // reversed sequences yields the same alignment costs).
  Rng rng(3);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 16;
  const auto ts = GenerateTrips(city, 8, rng);
  for (size_t i = 0; i + 1 < ts.size(); i += 2) {
    const Trajectory ra = traj::Reversed(ts[i]);
    const Trajectory rb = traj::Reversed(ts[i + 1]);
    EXPECT_DOUBLE_EQ(LcssDistance(ts[i], ts[i + 1], 200.0),
                     LcssDistance(ra, rb, 200.0));
    EXPECT_DOUBLE_EQ(Edr(ts[i], ts[i + 1], 200.0), Edr(ra, rb, 200.0));
  }
}

}  // namespace
}  // namespace traj2hash::dist
