#include "distance/exact_search.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "traj/synthetic.h"

namespace traj2hash::dist {
namespace {

struct Workload {
  std::vector<traj::Trajectory> database;
  std::vector<traj::Trajectory> queries;
};

Workload MakeWorkload(int db, int q, uint64_t seed = 41) {
  Rng rng(seed);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 18;
  auto all = GenerateTrips(city, db + q, rng);
  Workload w;
  w.queries.assign(all.begin(), all.begin() + q);
  w.database.assign(all.begin() + q, all.end());
  return w;
}

class LowerBoundSearchTest : public ::testing::TestWithParam<Measure> {};

TEST_P(LowerBoundSearchTest, MatchesBruteForceExactly) {
  const Workload w = MakeWorkload(150, 5);
  const DistanceFn fn = GetDistance(GetParam());
  for (const traj::Trajectory& q : w.queries) {
    const ExactSearchResult pruned =
        ExactTopKWithLowerBound(q, w.database, GetParam(), 10);
    // Reference: exhaustive scoring with identical tie-break.
    std::vector<std::pair<double, int>> all;
    for (size_t i = 0; i < w.database.size(); ++i) {
      all.push_back({fn(q, w.database[i]), static_cast<int>(i)});
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(pruned.neighbors.size(), 10u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(pruned.neighbors[i].index, all[i].second) << i;
      EXPECT_DOUBLE_EQ(pruned.neighbors[i].distance, all[i].first);
    }
  }
}

TEST_P(LowerBoundSearchTest, AccountingIsConsistent) {
  const Workload w = MakeWorkload(200, 3);
  for (const traj::Trajectory& q : w.queries) {
    const ExactSearchResult r =
        ExactTopKWithLowerBound(q, w.database, GetParam(), 5);
    EXPECT_EQ(r.dp_evaluations + r.pruned,
              static_cast<int>(w.database.size()));
    EXPECT_GE(r.dp_evaluations, 5);
  }
}

TEST_P(LowerBoundSearchTest, PrunesSomethingOnClusteredData) {
  // Hub-structured trips have spread-out endpoints, so the bound bites for
  // Frechet (whose value is max-aggregated, close to the bound). For DTW the
  // sum aggregation dwarfs one point pair and pruning can be zero — exactly
  // the looseness the paper remarks on — so only non-negativity is asserted.
  const Workload w = MakeWorkload(300, 4);
  int total_pruned = 0;
  for (const traj::Trajectory& q : w.queries) {
    total_pruned +=
        ExactTopKWithLowerBound(q, w.database, GetParam(), 10).pruned;
  }
  if (GetParam() == Measure::kFrechet) {
    EXPECT_GT(total_pruned, 0);
  } else {
    EXPECT_GE(total_pruned, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(LowerBoundMeasures, LowerBoundSearchTest,
                         ::testing::Values(Measure::kFrechet, Measure::kDtw),
                         [](const auto& info) {
                           return MeasureName(info.param);
                         });

TEST(LowerBoundSearchTest, KLargerThanDatabaseClamps) {
  const Workload w = MakeWorkload(6, 1);
  const auto r = ExactTopKWithLowerBound(w.queries[0], w.database,
                                         Measure::kFrechet, 50);
  EXPECT_EQ(r.neighbors.size(), 6u);
}

TEST(LowerBoundSearchDeathTest, HausdorffRejected) {
  const Workload w = MakeWorkload(4, 1);
  EXPECT_DEATH(ExactTopKWithLowerBound(w.queries[0], w.database,
                                       Measure::kHausdorff, 2),
               "CHECK");
}

}  // namespace
}  // namespace traj2hash::dist
