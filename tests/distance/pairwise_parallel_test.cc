#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance.h"
#include "traj/synthetic.h"

namespace traj2hash::dist {
namespace {

std::vector<traj::Trajectory> Corpus(int n) {
  Rng rng(9);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 16;
  return GenerateTrips(city, n, rng);
}

class PairwiseParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(PairwiseParallelTest, MatchesSerialExactly) {
  const auto ts = Corpus(24);
  const DistanceFn fn = GetDistance(Measure::kFrechet);
  const std::vector<double> serial = PairwiseMatrix(ts, fn);
  const std::vector<double> parallel =
      PairwiseMatrixParallel(ts, fn, GetParam());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PairwiseParallelTest,
                         ::testing::Values(1, 2, 4, 7),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(PairwiseParallelTest, WorksForAllMeasures) {
  const auto ts = Corpus(10);
  for (const Measure m :
       {Measure::kFrechet, Measure::kHausdorff, Measure::kDtw}) {
    const DistanceFn fn = GetDistance(m);
    EXPECT_EQ(PairwiseMatrix(ts, fn), PairwiseMatrixParallel(ts, fn, 3))
        << MeasureName(m);
  }
}

TEST(PairwiseParallelTest, TinyInputs) {
  const auto ts = Corpus(2);
  const DistanceFn fn = GetDistance(Measure::kDtw);
  const auto d = PairwiseMatrixParallel(ts, fn, 8);  // more threads than rows
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], 0.0);
  EXPECT_EQ(d[3], 0.0);
  EXPECT_EQ(d[1], d[2]);
  EXPECT_GT(d[1], 0.0);
}

}  // namespace
}  // namespace traj2hash::dist
