// Kernel ISA selection tests: name/parse round-trips, availability
// invariants, the never-silently-fall-back contract of SetKernelIsa, and
// ScopedKernelIsa's restore semantics. Pure selection-layer tests — the
// numeric contracts of the backends themselves live in
// tests/nn/kernels_isa_test.cc and tests/search/kernels_isa_test.cc.

#include "common/cpu_features.h"

#include <gtest/gtest.h>

namespace traj2hash {
namespace {

constexpr KernelIsa kAllIsas[] = {KernelIsa::kScalar, KernelIsa::kSse2,
                                  KernelIsa::kAvx2};

TEST(KernelIsaTest, NamesRoundTripThroughParse) {
  for (const KernelIsa isa : kAllIsas) {
    const auto parsed = ParseKernelIsa(KernelIsaName(isa));
    ASSERT_TRUE(parsed.ok()) << KernelIsaName(isa);
    EXPECT_EQ(parsed.value(), isa);
  }
}

TEST(KernelIsaTest, ParseRejectsUnknownNames) {
  for (const char* bad : {"", "avx512", "AVX2", "scalar ", "neon"}) {
    EXPECT_FALSE(ParseKernelIsa(bad).ok()) << "'" << bad << "'";
  }
}

TEST(KernelIsaTest, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(KernelIsaAvailable(KernelIsa::kScalar));
}

TEST(KernelIsaTest, DetectedBestIsAvailable) {
  EXPECT_TRUE(KernelIsaAvailable(DetectBestKernelIsa()));
}

TEST(KernelIsaTest, CurrentSelectionIsAvailableAndSourced) {
  const KernelIsaSelection sel = CurrentKernelIsa();
  EXPECT_TRUE(KernelIsaAvailable(sel.selected));
  EXPECT_EQ(sel.detected, DetectBestKernelIsa());
  EXPECT_FALSE(sel.source.empty());
  EXPECT_EQ(KernelIsaIndex(), static_cast<int>(sel.selected));
}

TEST(KernelIsaTest, SetToUnavailableIsaFailsAndChangesNothing) {
  KernelIsa unavailable = KernelIsa::kScalar;
  bool found = false;
  for (const KernelIsa isa : kAllIsas) {
    if (!KernelIsaAvailable(isa)) {
      unavailable = isa;
      found = true;
      break;
    }
  }
  if (!found) {
    GTEST_SKIP() << "every compiled ISA is available on this host";
  }
  const KernelIsaSelection before = CurrentKernelIsa();
  const Status s = SetKernelIsa(unavailable, "test:unavailable");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
  const KernelIsaSelection after = CurrentKernelIsa();
  EXPECT_EQ(after.selected, before.selected);
  EXPECT_EQ(after.source, before.source);
}

TEST(KernelIsaTest, SetKernelIsaRecordsSourceVerbatim) {
  const KernelIsaSelection before = CurrentKernelIsa();
  ASSERT_TRUE(SetKernelIsa(KernelIsa::kScalar, "test:pin").ok());
  EXPECT_EQ(CurrentKernelIsa().selected, KernelIsa::kScalar);
  EXPECT_EQ(CurrentKernelIsa().source, "test:pin");
  EXPECT_EQ(KernelIsaIndex(), 0);
  ASSERT_TRUE(SetKernelIsa(before.selected, before.source).ok());
}

TEST(KernelIsaTest, ScopedPinRestoresSelectionAndSource) {
  const KernelIsaSelection before = CurrentKernelIsa();
  {
    ScopedKernelIsa pin(KernelIsa::kScalar);
    EXPECT_EQ(CurrentKernelIsa().selected, KernelIsa::kScalar);
    {
      // Nested pins restore in LIFO order.
      ScopedKernelIsa inner(KernelIsa::kScalar);
      EXPECT_EQ(CurrentKernelIsa().selected, KernelIsa::kScalar);
    }
    EXPECT_EQ(CurrentKernelIsa().selected, KernelIsa::kScalar);
  }
  const KernelIsaSelection after = CurrentKernelIsa();
  EXPECT_EQ(after.selected, before.selected);
  EXPECT_EQ(after.source, before.source);
}

}  // namespace
}  // namespace traj2hash
