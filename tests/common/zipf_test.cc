// Unit tests for the Zipfian rank sampler (common/zipf.h) behind
// serve-bench's --query-dist zipf:<s>: rank 0 dominates under positive
// skew, s = 0 degenerates to uniform, draws are deterministic from the Rng
// seed, and the CDF covers every rank.
#include "common/zipf.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace traj2hash {
namespace {

std::vector<int> Histogram(const ZipfSampler& sampler, int draws,
                           uint64_t seed) {
  Rng rng(seed);
  std::vector<int> counts(sampler.size(), 0);
  for (int i = 0; i < draws; ++i) {
    const int r = sampler.Sample(rng);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, sampler.size());
    ++counts[r];
  }
  return counts;
}

TEST(ZipfSamplerTest, RankZeroDominatesUnderSkew) {
  const ZipfSampler sampler(100, 1.0);
  const std::vector<int> counts = Histogram(sampler, 20000, 7);
  // Under s=1 over 100 ranks, P(0) ≈ 1/H_100 ≈ 0.193 and the frequencies
  // decay monotonically in expectation; check the strong ordering between
  // head and tail rather than exact probabilities.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  EXPECT_GT(counts[0], 20000 / 10);  // well above the uniform 200
}

TEST(ZipfSamplerTest, ZeroSkewIsUniform) {
  const ZipfSampler sampler(50, 0.0);
  const std::vector<int> counts = Histogram(sampler, 50000, 11);
  // Every rank is equally likely (1000 expected); allow generous slack.
  for (int r = 0; r < 50; ++r) {
    EXPECT_GT(counts[r], 700) << "rank " << r;
    EXPECT_LT(counts[r], 1300) << "rank " << r;
  }
}

TEST(ZipfSamplerTest, DeterministicFromTheSeed) {
  const ZipfSampler sampler(64, 0.8);
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 256; ++i) {
    const int x = sampler.Sample(a);
    EXPECT_EQ(x, sampler.Sample(b));
    diverged = diverged || x != sampler.Sample(c);
  }
  EXPECT_TRUE(diverged);  // a different seed gives a different stream
}

TEST(ZipfSamplerTest, SingleRankAlwaysSampled) {
  const ZipfSampler sampler(1, 1.2);
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(sampler.Sample(rng), 0);
  }
}

TEST(ZipfSamplerTest, ExtremeSkewCollapsesOntoTheHead) {
  const ZipfSampler sampler(1000, 4.0);
  const std::vector<int> counts = Histogram(sampler, 5000, 17);
  // With s=4 essentially all mass is on the first few ranks.
  EXPECT_GT(counts[0], 4000);
}

}  // namespace
}  // namespace traj2hash
