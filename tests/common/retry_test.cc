#include "common/retry.h"

#include <vector>

#include <gtest/gtest.h>

namespace traj2hash {
namespace {

TEST(RetryTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryOptions options;
  options.initial_backoff_ms = 10.0;
  options.multiplier = 2.0;
  options.max_backoff_ms = 45.0;
  options.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 1, rng), 10.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 2, rng), 20.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 3, rng), 40.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 4, rng), 45.0);  // capped
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 9, rng), 45.0);
}

TEST(RetryTest, JitterStaysInBandAndIsSeedDeterministic) {
  RetryOptions options;
  options.initial_backoff_ms = 100.0;
  options.jitter = 0.25;
  Rng rng_a(7);
  Rng rng_b(7);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const double a = BackoffMillis(options, attempt, rng_a);
    const double b = BackoffMillis(options, attempt, rng_b);
    EXPECT_DOUBLE_EQ(a, b) << "same seed must give the same schedule";
    const double base = std::min(options.max_backoff_ms,
                                 100.0 * std::pow(2.0, attempt - 1));
    EXPECT_GE(a, base * 0.75);
    EXPECT_LE(a, base * 1.25);
  }
}

TEST(RetryTest, RetriesTransientFailuresThenSucceeds) {
  Rng rng(3);
  RetryOptions options;
  options.max_attempts = 5;
  int calls = 0;
  std::vector<double> sleeps;
  const Status s = RetryWithBackoff(
      options, rng,
      [&calls] {
        ++calls;
        return calls < 3 ? Status::Unavailable("busy") : Status::Ok();
      },
      [&sleeps](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);  // slept after each of the two failures
  EXPECT_GT(sleeps[0], 0.0);
  EXPECT_GT(sleeps[1], 0.0);
}

TEST(RetryTest, GivesUpAfterAttemptBudget) {
  Rng rng(3);
  RetryOptions options;
  options.max_attempts = 3;
  int calls = 0;
  const Status s = RetryWithBackoff(
      options, rng,
      [&calls] {
        ++calls;
        return Status::IoError("disk flaking");
      },
      [](double) {});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DoesNotRetryNonRetryableCodes) {
  Rng rng(3);
  int calls = 0;
  const Status s = RetryWithBackoff(
      RetryOptions{}, rng,
      [&calls] {
        ++calls;
        return Status::DataLoss("corrupt snapshot");
      },
      [](double) {});
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1) << "corruption must not be retried";
}

TEST(RetryTest, IsRetryableClassification) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kIoError));
  EXPECT_FALSE(IsRetryable(StatusCode::kDataLoss));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kDeadlineExceeded));
}

}  // namespace
}  // namespace traj2hash
