#include "common/status.h"

#include <gtest/gtest.h>

namespace traj2hash {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace traj2hash
