#include "common/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace traj2hash {
namespace {

TEST(RngTest, DeterministicUnderSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 20) != b.UniformInt(0, 1 << 20)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformRealBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(2.0);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sq / n, 4.0, 0.3);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(10);
  for (const int k : {0, 1, 5, 20, 50}) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(50, k);
    EXPECT_EQ(static_cast<int>(sample.size()), k);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int>(unique.size()), k);
    for (const int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(11);
  const std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace traj2hash
