#include "common/fault_injection.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/file_util.h"
#include "common/status.h"

namespace traj2hash {
namespace {

TEST(FaultInjectionTest, InactiveInjectorNeverFires) {
  EXPECT_FALSE(FaultInjector::Fire(faults::kFileWrite));
  EXPECT_FALSE(FaultInjector::Fire("made.up.point"));
}

TEST(FaultInjectionTest, UnarmedPointsPassThrough) {
  FaultInjector fi;
  fi.Arm(faults::kFileWrite);
  FaultInjector::Scope scope(&fi);
  EXPECT_FALSE(FaultInjector::Fire(faults::kFileRename));
  EXPECT_TRUE(FaultInjector::Fire(faults::kFileWrite));
}

TEST(FaultInjectionTest, CountedArmingSkipsThenFiresThenPasses) {
  FaultInjector fi;
  fi.Arm("p", /*skip=*/2, /*fire=*/3);
  FaultInjector::Scope scope(&fi);
  std::vector<bool> observed;
  for (int i = 0; i < 7; ++i) observed.push_back(FaultInjector::Fire("p"));
  EXPECT_EQ(observed, (std::vector<bool>{false, false, true, true, true,
                                         false, false}));
  EXPECT_EQ(fi.hits("p"), 7);
  EXPECT_EQ(fi.fired("p"), 3);
}

TEST(FaultInjectionTest, ProbabilisticArmingIsSeedDeterministic) {
  auto sequence = [](uint64_t seed) {
    FaultInjector fi;
    fi.ArmProbability("p", 0.5, seed);
    FaultInjector::Scope scope(&fi);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(FaultInjector::Fire("p"));
    return out;
  };
  EXPECT_EQ(sequence(11), sequence(11));
  EXPECT_NE(sequence(11), sequence(12));  // astronomically unlikely to match
}

TEST(FaultInjectionTest, ScopeRestoresPreviousInjector) {
  FaultInjector outer;
  outer.Arm("p");
  FaultInjector::Scope outer_scope(&outer);
  {
    FaultInjector inner;  // nothing armed
    FaultInjector::Scope inner_scope(&inner);
    EXPECT_FALSE(FaultInjector::Fire("p"));
  }
  EXPECT_TRUE(FaultInjector::Fire("p"));
}

TEST(FaultInjectionTest, GateBlocksUntilOpened) {
  FaultInjector fi;
  fi.ArmGate("p");
  FaultInjector::Scope scope(&fi);
  std::atomic<bool> passed{false};
  std::thread worker([&passed] {
    EXPECT_FALSE(FaultInjector::Fire("p"));  // gates never report a fault
    passed = true;
  });
  // The worker must be parked inside Fire until the gate opens. Spin until
  // the hit registers, then assert it has not passed.
  while (fi.hits("p") == 0) std::this_thread::yield();
  EXPECT_FALSE(passed.load());
  fi.OpenGate("p");
  worker.join();
  EXPECT_TRUE(passed.load());
  // Post-open hits pass straight through.
  EXPECT_FALSE(FaultInjector::Fire("p"));
}

TEST(FaultInjectionTest, DeadlineConsultsFaultPoint) {
  const Deadline infinite = Deadline::Infinite();
  EXPECT_FALSE(infinite.Expired(faults::kShardProbe));
  FaultInjector fi;
  fi.Arm(faults::kShardProbe, /*skip=*/1, /*fire=*/1);
  FaultInjector::Scope scope(&fi);
  EXPECT_FALSE(infinite.Expired(faults::kShardProbe));
  EXPECT_TRUE(infinite.Expired(faults::kShardProbe))
      << "an armed point forces expiry even on an infinite deadline";
  EXPECT_FALSE(infinite.Expired(faults::kShardProbe));
  EXPECT_FALSE(infinite.Expired()) << "unnamed checks never consult faults";
}

TEST(FaultInjectionTest, AtomicWriteTornByInjectedFault) {
  const std::string path =
      ::testing::TempDir() + "/fault_injection_torn_write.bin";
  const std::string first(1000, 'A');
  ASSERT_TRUE(AtomicWriteFile(path, first).ok());

  FaultInjector fi;
  fi.Arm(faults::kFileWrite);
  {
    FaultInjector::Scope scope(&fi);
    const Status s = AtomicWriteFile(path, std::string(1000, 'B'));
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  // The torn write must leave the previous contents fully intact and no
  // temp file behind.
  Result<std::string> after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), first);
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
}

TEST(FaultInjectionTest, AtomicWriteRenameFaultKeepsTarget) {
  const std::string path =
      ::testing::TempDir() + "/fault_injection_rename.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "old contents").ok());
  FaultInjector fi;
  fi.Arm(faults::kFileRename);
  {
    FaultInjector::Scope scope(&fi);
    EXPECT_EQ(AtomicWriteFile(path, "new contents").code(),
              StatusCode::kIoError);
  }
  Result<std::string> after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "old contents");
}

}  // namespace
}  // namespace traj2hash
