#include "common/stopwatch.h"

#include <gtest/gtest.h>

namespace traj2hash {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, MicrosMatchesSeconds) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double seconds = sw.ElapsedSeconds();
  const double micros = sw.ElapsedMicros();
  // Two reads a moment apart: micros must be ~1e6x the seconds reading.
  EXPECT_GE(micros, seconds * 1e6 * 0.5);
  EXPECT_LE(micros, (seconds + 1.0) * 1e6);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  const double before = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace traj2hash
