#include "common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace traj2hash {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0x00000000u);
  EXPECT_EQ(Crc32(std::string("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(std::string("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string payload = "incremental checksumming over chunks";
  uint32_t state = kCrc32Init;
  for (size_t i = 0; i < payload.size(); i += 7) {
    const size_t n = std::min<size_t>(7, payload.size() - i);
    state = Crc32Update(state, payload.data() + i, n);
  }
  EXPECT_EQ(Crc32Finish(state), Crc32(payload));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string payload(256, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31 + 7);
  }
  const uint32_t clean = Crc32(payload);
  for (const size_t byte : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    std::string corrupted = payload;
    corrupted[byte] ^= 0x10;
    EXPECT_NE(Crc32(corrupted), clean) << "flip at byte " << byte;
  }
}

TEST(Crc32Test, BinaryOverloadMatchesStringOverload) {
  const std::string payload = "same bytes, two entry points";
  EXPECT_EQ(Crc32(payload.data(), payload.size()), Crc32(payload));
}

}  // namespace
}  // namespace traj2hash
