// Regression tests for the raw-pointer micro-kernels (nn/kernels.h) and the
// ops rewritten on top of them.
//
// Three layers of protection:
//  - bit-identity of each matmul kernel against the naive reference loops it
//    replaced (the blocking must not change any accumulation order);
//  - finite-difference gradient checks of every kernel-backed op across
//    square, non-square and degenerate [1, d] shapes;
//  - the GradSink / NoGradGuard machinery the data-parallel trainer relies
//    on (redirection, fixed-order reduction, tape suppression).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/kernels.h"
#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

constexpr double kTol = 2e-2;  // float forward + 1e-3 step central diff

Tensor RandomTensor(int rows, int cols, Rng& rng, bool requires_grad = true,
                    float scale = 1.0f) {
  Tensor t = MakeTensor(rows, cols, requires_grad);
  for (float& v : t->value()) {
    v = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return t;
}

/// Reduces any tensor to a scalar with non-uniform weights, so gradient
/// errors cannot cancel out.
Tensor WeightedSum(const Tensor& t) {
  Tensor weights = MakeTensor(t->rows(), t->cols(), false);
  for (int i = 0; i < weights->size(); ++i) {
    weights->value()[i] = 0.1f * static_cast<float>(i + 1);
  }
  return SumAll(Mul(t, weights));
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

// ---------------------------------------------------------------------------
// Kernel bit-identity vs the naive reference loops.
// ---------------------------------------------------------------------------

class MatMulKernelIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  // Bit-identity vs the naive reference loops is the SCALAR backend's
  // contract; SIMD backends fix their own accumulation orders and are
  // gated by tests/nn/kernels_isa_test.cc instead.
  ScopedKernelIsa pin_{KernelIsa::kScalar};
};

TEST_P(MatMulKernelIdentityTest, ForwardMatchesNaiveBitForBit) {
  const auto [n, k, m] = GetParam();
  Rng rng(11);
  const std::vector<float> a = RandomVec(static_cast<size_t>(n) * k, rng);
  const std::vector<float> b = RandomVec(static_cast<size_t>(k) * m, rng);
  std::vector<float> c_kernel(static_cast<size_t>(n) * m, 0.0f);
  std::vector<float> c_naive(c_kernel);
  kernels::MatMulAccum(a.data(), b.data(), c_kernel.data(), n, k, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int c = 0; c < k; ++c) {
        acc += a[static_cast<size_t>(i) * k + c] *
               b[static_cast<size_t>(c) * m + j];
      }
      c_naive[static_cast<size_t>(i) * m + j] = acc;
    }
  }
  for (size_t i = 0; i < c_naive.size(); ++i) {
    ASSERT_EQ(c_kernel[i], c_naive[i]) << "element " << i;
  }
}

TEST_P(MatMulKernelIdentityTest, GradAMatchesNaiveBitForBit) {
  const auto [n, k, m] = GetParam();
  Rng rng(12);
  const std::vector<float> dc = RandomVec(static_cast<size_t>(n) * m, rng);
  const std::vector<float> b = RandomVec(static_cast<size_t>(k) * m, rng);
  // Non-zero starting grads: accumulation (+=) must also match.
  std::vector<float> da_kernel = RandomVec(static_cast<size_t>(n) * k, rng);
  std::vector<float> da_naive(da_kernel);
  kernels::MatMulGradA(dc.data(), b.data(), da_kernel.data(), n, k, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      float acc = 0.0f;
      for (int c = 0; c < m; ++c) {
        acc += dc[static_cast<size_t>(i) * m + c] *
               b[static_cast<size_t>(j) * m + c];
      }
      da_naive[static_cast<size_t>(i) * k + j] += acc;
    }
  }
  for (size_t i = 0; i < da_naive.size(); ++i) {
    ASSERT_EQ(da_kernel[i], da_naive[i]) << "element " << i;
  }
}

TEST_P(MatMulKernelIdentityTest, GradBMatchesAxpyReferenceBitForBit) {
  const auto [n, k, m] = GetParam();
  Rng rng(13);
  const std::vector<float> a = RandomVec(static_cast<size_t>(n) * k, rng);
  const std::vector<float> dc = RandomVec(static_cast<size_t>(n) * m, rng);
  std::vector<float> db_kernel = RandomVec(static_cast<size_t>(k) * m, rng);
  std::vector<float> db_naive(db_kernel);
  kernels::MatMulGradB(a.data(), dc.data(), db_kernel.data(), n, k, m);
  // Reference: rank-1 accumulation with r ascending (the kernel's contract).
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < m; ++j) {
        db_naive[static_cast<size_t>(i) * m + j] +=
            a[static_cast<size_t>(r) * k + i] *
            dc[static_cast<size_t>(r) * m + j];
      }
    }
  }
  for (size_t i = 0; i < db_naive.size(); ++i) {
    ASSERT_EQ(db_kernel[i], db_naive[i]) << "element " << i;
  }
}

// Shapes straddle the column-tile width (128) so both the full-tile and
// remainder paths run, plus degenerate single-row/column cases.
INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulKernelIdentityTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 16, 128),
                      std::make_tuple(3, 5, 7), std::make_tuple(8, 128, 8),
                      std::make_tuple(17, 31, 129),
                      std::make_tuple(4, 200, 300)));

// ---------------------------------------------------------------------------
// Gradient checks of the kernel-backed ops across shapes, including
// non-square and [1, d].
// ---------------------------------------------------------------------------

struct Shape {
  int rows;
  int cols;
};

class KernelOpGradTest : public ::testing::TestWithParam<Shape> {};

TEST_P(KernelOpGradTest, MatMulGradA) {
  const Shape s = GetParam();
  Rng rng(21);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor o = RandomTensor(s.cols, 3, rng, false);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(MatMul(p, o)); }), kTol);
}

TEST_P(KernelOpGradTest, MatMulGradB) {
  const Shape s = GetParam();
  Rng rng(22);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor o = RandomTensor(3, s.rows, rng, false);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(MatMul(o, p)); }), kTol);
}

TEST_P(KernelOpGradTest, MatMulBothSides) {
  const Shape s = GetParam();
  Rng rng(23);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor q = RandomTensor(s.cols, s.rows, rng);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(MatMul(p, q)); }), kTol);
  EXPECT_LT(MaxGradError(q, [&] { return WeightedSum(MatMul(p, q)); }), kTol);
}

TEST_P(KernelOpGradTest, ElementwiseOps) {
  const Shape s = GetParam();
  Rng rng(24);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor o = RandomTensor(s.rows, s.cols, rng, false);
  // Div needs a divisor bounded away from zero.
  Tensor divisor = MakeTensor(s.rows, s.cols, false);
  for (int i = 0; i < divisor->size(); ++i) {
    divisor->value()[i] = 1.5f + 0.1f * static_cast<float>(i % 7);
  }
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(Add(p, o)); }), kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(Sub(o, p)); }), kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(Mul(p, o)); }), kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(Div(p, divisor)); }),
            kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(Scale(p, -1.7f)); }),
            kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(AddScalar(p, 0.3f)); }),
            kTol);
}

TEST_P(KernelOpGradTest, RowBroadcastAndSoftmax) {
  const Shape s = GetParam();
  Rng rng(25);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor row = RandomTensor(1, s.cols, rng);
  EXPECT_LT(
      MaxGradError(p, [&] { return WeightedSum(AddRowBroadcast(p, row)); }),
      kTol);
  EXPECT_LT(
      MaxGradError(row, [&] { return WeightedSum(AddRowBroadcast(p, row)); }),
      kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(SoftmaxRows(p)); }),
            kTol);
}

TEST_P(KernelOpGradTest, StructuralOps) {
  const Shape s = GetParam();
  Rng rng(26);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor o = RandomTensor(s.rows, s.cols, rng, false);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(Transpose(p)); }), kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(ConcatCols(p, o)); }),
            kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(ConcatRows(o, p)); }),
            kTol);
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(MeanRows(p)); }), kTol);
  EXPECT_LT(MaxGradError(
                p, [&] { return WeightedSum(SliceCols(p, 0, p->cols())); }),
            kTol);
  if (s.rows > 1) {
    EXPECT_LT(
        MaxGradError(p, [&] { return WeightedSum(SliceRows(p, 1, p->rows())); }),
        kTol);
  }
  // Gather with a repeated index: grads must accumulate per table row.
  const std::vector<int> idx = {0, s.rows - 1, 0};
  EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(GatherRows(p, idx)); }),
            kTol);
}

TEST_P(KernelOpGradTest, NormalizeAndScaleByScalar) {
  const Shape s = GetParam();
  Rng rng(27);
  const Tensor p = RandomTensor(s.rows, s.cols, rng);
  const Tensor scalar = RandomTensor(1, 1, rng);
  if (s.cols > 1) {
    EXPECT_LT(MaxGradError(p, [&] { return WeightedSum(NormalizeRows(p)); }),
              kTol);
  }
  EXPECT_LT(
      MaxGradError(p, [&] { return WeightedSum(ScaleByScalar(p, scalar)); }),
      kTol);
  EXPECT_LT(
      MaxGradError(scalar,
                   [&] { return WeightedSum(ScaleByScalar(p, scalar)); }),
      kTol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, KernelOpGradTest,
                         ::testing::Values(Shape{4, 4},      // square
                                           Shape{3, 7},      // non-square
                                           Shape{5, 2},      // tall
                                           Shape{1, 16}));   // [1, d]

// ---------------------------------------------------------------------------
// GradSink: redirection and fixed-order reduction.
// ---------------------------------------------------------------------------

TEST(GradSinkTest, RedirectsRegisteredParamAndLeavesOthersAlone) {
  Rng rng(31);
  const Tensor w = RandomTensor(2, 3, rng);
  GradSink sink({w});
  {
    GradSink::Scope scope(&sink);
    Backward(SumAll(Scale(w, 2.0f)));
  }
  // Inside the scope the real grad stayed untouched.
  for (const float g : std::as_const(*w).grad()) EXPECT_EQ(g, 0.0f);
  sink.AccumulateInto();
  for (const float g : std::as_const(*w).grad()) EXPECT_EQ(g, 2.0f);
}

TEST(GradSinkTest, PerUnitSinksReduceLikeSerialAccumulation) {
  Rng rng(32);
  const Tensor w = RandomTensor(3, 3, rng);
  const Tensor x = RandomTensor(3, 3, rng, false);

  // Reference: two backward passes accumulating directly.
  auto loss = [&](float s) { return SumAll(Mul(Scale(w, s), x)); };
  Backward(loss(1.0f));
  Backward(loss(2.0f));
  const std::vector<float> expected = std::as_const(*w).grad();
  w->ZeroGrad();

  GradSink s1({w}), s2({w});
  {
    GradSink::Scope scope(&s1);
    Backward(loss(1.0f));
  }
  {
    GradSink::Scope scope(&s2);
    Backward(loss(2.0f));
  }
  s1.AccumulateInto();
  s2.AccumulateInto();
  EXPECT_EQ(std::as_const(*w).grad(), expected);
}

// ---------------------------------------------------------------------------
// NoGradGuard + lazy MakeOp: no tape without grad-requiring parents.
// ---------------------------------------------------------------------------

TEST(NoGradTest, GuardSuppressesTapeConstruction) {
  Rng rng(41);
  const Tensor w = RandomTensor(2, 2, rng);
  {
    NoGradGuard no_grad;
    EXPECT_FALSE(GradEnabled());
    const Tensor out = MatMul(w, w);
    EXPECT_FALSE(out->requires_grad());
    EXPECT_TRUE(out->parents().empty());
    EXPECT_FALSE(static_cast<bool>(out->backward_fn()));
  }
  EXPECT_TRUE(GradEnabled());
  const Tensor taped = MatMul(w, w);
  EXPECT_TRUE(taped->requires_grad());
  EXPECT_EQ(taped->parents().size(), 2u);
  EXPECT_TRUE(static_cast<bool>(taped->backward_fn()));
}

TEST(NoGradTest, GuardedForwardValuesMatchTapedForward) {
  Rng rng(42);
  const Tensor a = RandomTensor(3, 5, rng);
  const Tensor b = RandomTensor(5, 4, rng);
  const Tensor taped = SoftmaxRows(MatMul(a, b));
  Tensor untaped;
  {
    NoGradGuard no_grad;
    untaped = SoftmaxRows(MatMul(a, b));
  }
  EXPECT_EQ(taped->value(), untaped->value());
}

TEST(NoGradTest, NonGradParentsBuildNoTapeEitherWay) {
  const Tensor a = Constant(2, 2, 1.0f);
  const Tensor b = Constant(2, 2, 2.0f);
  const Tensor out = Add(a, b);
  EXPECT_FALSE(out->requires_grad());
  EXPECT_TRUE(out->parents().empty());
  EXPECT_FALSE(static_cast<bool>(out->backward_fn()));
}

}  // namespace
}  // namespace traj2hash::nn
