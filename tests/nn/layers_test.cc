#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

Tensor RandomInput(int rows, int cols, Rng& rng) {
  Tensor t = MakeTensor(rows, cols, false);
  for (float& v : t->value()) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return t;
}

TEST(LinearTest, OutputShapeAndBias) {
  Rng rng(1);
  Linear layer(3, 5, rng);
  const Tensor y = layer.Forward(RandomInput(4, 3, rng));
  EXPECT_EQ(y->rows(), 4);
  EXPECT_EQ(y->cols(), 5);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // weight + bias
}

TEST(LinearTest, NoBiasVariantMapsZeroToZero) {
  Rng rng(1);
  Linear layer(3, 5, rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  const Tensor y = layer.Forward(MakeTensor(1, 3, false));
  for (const float v : y->value()) EXPECT_EQ(v, 0.0f);
}

TEST(LinearTest, GradientsFlowToWeightAndBias) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  const Tensor x = RandomInput(2, 3, rng);
  for (const Tensor& p : layer.Parameters()) {
    const double err =
        MaxGradError(p, [&] { return SumAll(Tanh(layer.Forward(x))); });
    EXPECT_LT(err, 2e-2);
  }
}

TEST(MlpTest, HiddenReluIsApplied) {
  Rng rng(3);
  Mlp mlp({2, 4, 3}, rng);
  const Tensor y = mlp.Forward(RandomInput(5, 2, rng));
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 3);
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // two Linear layers
}

TEST(EmbeddingTest, LookupReturnsTableRows) {
  Rng rng(4);
  Embedding emb(6, 3, rng);
  const Tensor rows = emb.Forward({4, 1, 4});
  EXPECT_EQ(rows->rows(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(rows->at(0, c), emb.table()->at(4, c));
    EXPECT_EQ(rows->at(1, c), emb.table()->at(1, c));
    EXPECT_EQ(rows->at(2, c), emb.table()->at(4, c));
  }
}

TEST(AttentionTest, ShapePreservedAndGradFlows) {
  Rng rng(5);
  MultiHeadAttention attn(8, 2, rng);
  const Tensor x = RandomInput(6, 8, rng);
  const Tensor y = attn.Forward(x);
  EXPECT_EQ(y->rows(), 6);
  EXPECT_EQ(y->cols(), 8);
  const Tensor wq = attn.Parameters()[0];
  const double err =
      MaxGradError(wq, [&] { return SumAll(Tanh(attn.Forward(x))); }, 1e-2f);
  EXPECT_LT(err, 5e-2);
}

TEST(AttentionTest, UniformTokensGiveUniformOutput) {
  // With identical tokens, attention output rows must be identical.
  Rng rng(6);
  MultiHeadAttention attn(8, 4, rng);
  Tensor x = MakeTensor(4, 8, false);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) x->at(r, c) = 0.3f * (c + 1);
  }
  const Tensor y = attn.Forward(x);
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(y->at(r, c), y->at(0, c), 1e-5f);
    }
  }
}

TEST(EncoderBlockTest, ResidualShape) {
  Rng rng(7);
  EncoderBlock block(8, 2, 16, rng);
  const Tensor x = RandomInput(5, 8, rng);
  const Tensor y = block.Forward(x);
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 8);
}

TEST(GruCellTest, StateShapeAndBoundedness) {
  Rng rng(8);
  GruCell cell(2, 6, rng);
  Tensor h = cell.InitialState();
  for (int step = 0; step < 10; ++step) {
    h = cell.Forward(RandomInput(1, 2, rng), h);
  }
  EXPECT_EQ(h->rows(), 1);
  EXPECT_EQ(h->cols(), 6);
  // GRU hidden state is a convex blend of tanh outputs: |h| <= 1.
  for (const float v : h->value()) EXPECT_LE(std::abs(v), 1.0f);
}

TEST(GruCellTest, GradientFlowsThroughTime) {
  Rng rng(9);
  GruCell cell(2, 4, rng);
  const Tensor x1 = RandomInput(1, 2, rng);
  const Tensor x2 = RandomInput(1, 2, rng);
  const Tensor p = cell.Parameters()[0];
  const double err = MaxGradError(p, [&] {
    Tensor h = cell.InitialState();
    h = cell.Forward(x1, h);
    h = cell.Forward(x2, h);
    return SumAll(h);
  });
  EXPECT_LT(err, 2e-2);
}

TEST(PositionalEncodingTest, MatchesFormula) {
  const Tensor pe = PositionalEncoding(4, 6);
  EXPECT_EQ(pe->rows(), 4);
  EXPECT_EQ(pe->cols(), 6);
  // Position 0: sin(0)=0, cos(0)=1 alternating.
  for (int k = 0; 2 * k < 6; ++k) {
    EXPECT_FLOAT_EQ(pe->at(0, 2 * k), 0.0f);
    EXPECT_FLOAT_EQ(pe->at(0, 2 * k + 1), 1.0f);
  }
  EXPECT_NEAR(pe->at(2, 0), std::sin(2.0), 1e-5);
  EXPECT_FALSE(pe->requires_grad());
}

TEST(PositionalEncodingTest, DistinctPositionsDistinctRows) {
  const Tensor pe = PositionalEncoding(8, 16);
  for (int r = 1; r < 8; ++r) {
    bool differs = false;
    for (int c = 0; c < 16; ++c) {
      if (std::abs(pe->at(r, c) - pe->at(0, c)) > 1e-4f) differs = true;
    }
    EXPECT_TRUE(differs) << "row " << r;
  }
}

TEST(XavierInitTest, WithinLimit) {
  Rng rng(10);
  const Tensor t = MakeTensor(20, 30, true);
  XavierInit(t, rng);
  const float limit = std::sqrt(6.0f / (20 + 30));
  for (const float v : t->value()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

}  // namespace
}  // namespace traj2hash::nn
