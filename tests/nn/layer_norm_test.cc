#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

Tensor RandomTensor(int rows, int cols, Rng& rng, bool grad = false) {
  Tensor t = MakeTensor(rows, cols, grad);
  for (float& v : t->value()) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
  return t;
}

TEST(NormalizeRowsTest, RowsHaveZeroMeanUnitVariance) {
  Rng rng(1);
  const Tensor x = RandomTensor(4, 16, rng);
  const Tensor y = NormalizeRows(x);
  for (int r = 0; r < 4; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int c = 0; c < 16; ++c) mean += y->at(r, c);
    mean /= 16;
    for (int c = 0; c < 16; ++c) {
      var += (y->at(r, c) - mean) * (y->at(r, c) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0f, 1e-5);
    EXPECT_NEAR(var, 1.0f, 1e-3);
  }
}

TEST(NormalizeRowsTest, ConstantRowStaysFinite) {
  const Tensor x = Constant(1, 8, 3.0f);
  const Tensor y = NormalizeRows(x);
  for (const float v : y->value()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 0.0f, 1e-4);
  }
}

TEST(NormalizeRowsTest, GradientMatchesFiniteDifferences) {
  Rng rng(2);
  const Tensor x = RandomTensor(3, 6, rng, /*grad=*/true);
  const Tensor weights = RandomTensor(3, 6, rng);
  const double err = MaxGradError(
      x, [&] { return SumAll(Mul(NormalizeRows(x), weights)); });
  EXPECT_LT(err, 2e-2);
}

TEST(LayerNormTest, IdentityInitPreservesNormalisedValues) {
  Rng rng(3);
  LayerNorm norm(8, rng);
  const Tensor x = RandomTensor(5, 8, rng);
  const Tensor direct = NormalizeRows(x);
  const Tensor via_module = norm.Forward(x);
  for (int i = 0; i < direct->size(); ++i) {
    EXPECT_NEAR(via_module->value()[i], direct->value()[i], 1e-5);
  }
  EXPECT_EQ(norm.Parameters().size(), 2u);
}

TEST(LayerNormTest, GammaBetaReceiveGradients) {
  Rng rng(4);
  LayerNorm norm(6, rng);
  const Tensor x = RandomTensor(4, 6, rng);
  for (const Tensor& p : norm.Parameters()) {
    const double err = MaxGradError(
        p, [&] { return SumAll(Tanh(norm.Forward(x))); });
    EXPECT_LT(err, 2e-2);
  }
}

TEST(EncoderBlockTest, LayerNormVariantKeepsShapeAndAddsParams) {
  Rng rng(5);
  EncoderBlock plain(8, 2, 16, rng, /*use_layer_norm=*/false);
  EncoderBlock normed(8, 2, 16, rng, /*use_layer_norm=*/true);
  const Tensor x = RandomTensor(5, 8, rng);
  EXPECT_EQ(normed.Forward(x)->rows(), 5);
  EXPECT_EQ(normed.Forward(x)->cols(), 8);
  EXPECT_EQ(normed.Parameters().size(), plain.Parameters().size() + 4);
}

TEST(EncoderBlockTest, LayerNormStabilisesActivationScale) {
  // Stacking many blocks without norm can blow up activations; with norm the
  // scale stays bounded. Compare output magnitudes over a deep stack.
  Rng rng1(6), rng2(6);
  std::vector<std::unique_ptr<EncoderBlock>> plain, normed;
  for (int i = 0; i < 6; ++i) {
    plain.push_back(std::make_unique<EncoderBlock>(8, 2, 16, rng1, false));
    normed.push_back(std::make_unique<EncoderBlock>(8, 2, 16, rng2, true));
  }
  Rng data_rng(7);
  Tensor xp = RandomTensor(4, 8, data_rng);
  Tensor xn = FromValues(4, 8, xp->value());
  for (int i = 0; i < 6; ++i) {
    xp = plain[i]->Forward(xp);
    xn = normed[i]->Forward(xn);
  }
  auto max_abs = [](const Tensor& t) {
    float m = 0.0f;
    for (const float v : t->value()) m = std::max(m, std::abs(v));
    return m;
  };
  EXPECT_LE(max_abs(xn), max_abs(xp) * 4.0f + 10.0f);  // bounded growth
}

}  // namespace
}  // namespace traj2hash::nn
