#include "nn/module.h"

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

/// Toy module exercising registration of both own parameters and children.
class ToyModule : public Module {
 public:
  explicit ToyModule(Rng& rng) : child_(2, 3, rng) {
    own_ = RegisterParameter(MakeTensor(4, 4, true));
    RegisterChild(child_);
  }

  const Tensor& own() const { return own_; }
  const Linear& child() const { return child_; }

 private:
  Linear child_;
  Tensor own_;
};

TEST(ModuleTest, ParametersCollectOwnAndChildren) {
  Rng rng(1);
  ToyModule mod(rng);
  // child Linear has weight + bias; plus one own tensor.
  EXPECT_EQ(mod.Parameters().size(), 3u);
}

TEST(ModuleTest, ZeroGradClearsEverything) {
  Rng rng(2);
  ToyModule mod(rng);
  for (const Tensor& p : mod.Parameters()) {
    std::fill(p->grad().begin(), p->grad().end(), 1.5f);
  }
  mod.ZeroGrad();
  for (const Tensor& p : mod.Parameters()) {
    for (const float g : p->grad()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(ModuleTest, RegisteredParameterIsShared) {
  Rng rng(3);
  ToyModule mod(rng);
  // Mutating through Parameters() must be visible through the module's own
  // handle (same underlying tensor).
  mod.Parameters()[0]->value()[0] = 42.0f;  // own_ registered first
  EXPECT_EQ(mod.own()->value()[0], 42.0f);
}

TEST(ModuleTest, GaussianInitMatchesRequestedSpread) {
  Rng rng(4);
  const Tensor t = MakeTensor(50, 50, true);
  GaussianInit(t, 0.5f, rng);
  double sum = 0.0, sq = 0.0;
  for (const float v : t->value()) {
    sum += v;
    sq += v * v;
  }
  const double n = t->size();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 0.25, 0.05);
}

}  // namespace
}  // namespace traj2hash::nn
