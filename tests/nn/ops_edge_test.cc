// Edge-case and contract tests for the op layer: shape CHECKs, domain
// CHECKs, and algebraic identities that the grad-check suite does not cover.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

Tensor Random(int rows, int cols, Rng& rng) {
  Tensor t = MakeTensor(rows, cols, false);
  for (float& v : t->value()) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return t;
}

TEST(OpsEdgeDeathTest, ShapeMismatches) {
  const Tensor a = MakeTensor(2, 3);
  const Tensor b = MakeTensor(3, 2);
  EXPECT_DEATH(Add(a, b), "CHECK");
  EXPECT_DEATH(Mul(a, b), "CHECK");
  EXPECT_DEATH(Sub(a, b), "CHECK");
  EXPECT_DEATH(Div(a, b), "CHECK");
  EXPECT_DEATH(MatMul(a, a), "CHECK");          // 3 != 2
  EXPECT_DEATH(ConcatCols(a, b), "CHECK");      // row mismatch
  EXPECT_DEATH(ConcatRows(a, b), "CHECK");      // col mismatch
  EXPECT_DEATH(AddRowBroadcast(a, b), "CHECK");  // row arg not [1, c]
}

TEST(OpsEdgeDeathTest, SliceBounds) {
  const Tensor a = MakeTensor(3, 3);
  EXPECT_DEATH(SliceRows(a, 2, 2), "CHECK");   // empty range
  EXPECT_DEATH(SliceRows(a, 0, 4), "CHECK");   // past the end
  EXPECT_DEATH(SliceCols(a, -1, 2), "CHECK");  // negative start
}

TEST(OpsEdgeDeathTest, GatherOutOfRange) {
  const Tensor table = MakeTensor(4, 2);
  EXPECT_DEATH(GatherRows(table, {0, 4}), "CHECK");
  EXPECT_DEATH(GatherRows(table, {-1}), "CHECK");
  EXPECT_DEATH(GatherRows(table, {}), "CHECK");
}

TEST(OpsEdgeDeathTest, DomainChecks) {
  EXPECT_DEATH(Log(FromValues(1, 1, {0.0f})), "CHECK");
  EXPECT_DEATH(Log(FromValues(1, 1, {-1.0f})), "CHECK");
  EXPECT_DEATH(Sqrt(FromValues(1, 1, {-0.5f})), "CHECK");
  EXPECT_DEATH(Div(FromValues(1, 1, {1.0f}), FromValues(1, 1, {0.0f})),
               "CHECK");
  EXPECT_DEATH(Dot(MakeTensor(2, 3), MakeTensor(2, 3)), "CHECK");
  EXPECT_DEATH(ScaleByScalar(MakeTensor(2, 2), MakeTensor(1, 2)), "CHECK");
}

TEST(OpsEdgeTest, TransposeTwiceIsIdentity) {
  Rng rng(1);
  const Tensor a = Random(3, 5, rng);
  const Tensor tt = Transpose(Transpose(a));
  EXPECT_EQ(tt->value(), a->value());
}

TEST(OpsEdgeTest, SoftmaxRowsSumToOneAndHandleExtremes) {
  const Tensor a = FromValues(2, 3, {1000.0f, 999.0f, -1000.0f,  // row 0
                                     0.0f, 0.0f, 0.0f});         // row 1
  const Tensor s = SoftmaxRows(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) {
      EXPECT_TRUE(std::isfinite(s->at(r, c)));
      sum += s->at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Uniform logits -> uniform distribution.
  EXPECT_NEAR(s->at(1, 0), 1.0f / 3.0f, 1e-6);
}

TEST(OpsEdgeTest, SingleColumnSoftmaxIsOne) {
  const Tensor s = SoftmaxRows(FromValues(3, 1, {5.0f, -2.0f, 0.0f}));
  for (const float v : s->value()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(OpsEdgeTest, ConstantAndDetachSemantics) {
  const Tensor c = Constant(2, 2, 7.5f);
  EXPECT_FALSE(c->requires_grad());
  for (const float v : c->value()) EXPECT_EQ(v, 7.5f);

  const Tensor p = FromValues(1, 2, {1.0f, 2.0f}, true);
  const Tensor d = Detach(Scale(p, 3.0f));
  // Mutating the detached copy must not touch the source graph.
  d->value()[0] = 99.0f;
  EXPECT_EQ(p->value()[0], 1.0f);
}

TEST(OpsEdgeTest, ScaleByZeroKillsGradient) {
  const Tensor p = FromValues(1, 2, {1.0f, 2.0f}, true);
  Backward(SumAll(Scale(p, 0.0f)));
  EXPECT_EQ(p->grad()[0], 0.0f);
  EXPECT_EQ(p->grad()[1], 0.0f);
}

TEST(OpsEdgeTest, EuclideanDistanceOfIdenticalVectorsIsTinyNotNan) {
  const Tensor a = FromValues(1, 4, {1.0f, 2.0f, 3.0f, 4.0f}, true);
  const Tensor d = EuclideanDistance(a, a);
  EXPECT_TRUE(std::isfinite(d->value()[0]));
  EXPECT_NEAR(d->value()[0], 0.0f, 1e-3);
  // Gradient at the epsilon-smoothed zero must also be finite.
  Backward(d);
  for (const float g : a->grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(OpsEdgeTest, MeanRowsOfSingleRowIsIdentity) {
  Rng rng(2);
  const Tensor a = Random(1, 6, rng);
  EXPECT_EQ(MeanRows(a)->value(), a->value());
}

TEST(OpsEdgeTest, RelfOfExtremeValues) {
  const Tensor a = FromValues(1, 3, {-1e30f, 0.0f, 1e30f});
  const Tensor r = Relu(a);
  EXPECT_EQ(r->value()[0], 0.0f);
  EXPECT_EQ(r->value()[1], 0.0f);
  EXPECT_EQ(r->value()[2], 1e30f);
}

}  // namespace
}  // namespace traj2hash::nn
