// Per-ISA contract tests for nn::kernels (DESIGN.md §14): each available
// backend is forced via ScopedKernelIsa and checked against the scalar
// backend's output — elementwise kernels must match BIT-FOR-BIT on every
// backend (they never reassociate or fuse), while reduction kernels
// (MatMulAccum / MatMulGradA / MatMulGradB / Dot) must be deterministic
// within a backend (two runs bit-identical) and within a small relative
// epsilon of scalar across backends. ISAs the host cannot run are skipped
// visibly ("SKIPPED: no avx2"), never silently downgraded.

#include "nn/kernels.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/rng.h"

namespace traj2hash::nn::kernels {
namespace {

std::vector<float> RandomVec(int n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.5, 1.5));
  return v;
}

bool BitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double MaxRelDiff(const std::vector<float>& a, const std::vector<float>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(static_cast<double>(a[i])));
    worst = std::max(worst, std::fabs(static_cast<double>(a[i]) - b[i]) / denom);
  }
  return worst;
}

class KernelIsaContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    const auto parsed = ParseKernelIsa(GetParam());
    ASSERT_TRUE(parsed.ok());
    isa_ = parsed.value();
    if (!KernelIsaAvailable(isa_)) {
      GTEST_SKIP() << "SKIPPED: no " << GetParam()
                   << " (not compiled in or unsupported by this CPU)";
    }
  }

  KernelIsa isa_ = KernelIsa::kScalar;
};

/// Runs `fn` once under the scalar backend and twice under the tested one;
/// returns {scalar_out, out_run1, out_run2}.
template <typename Fn>
std::vector<std::vector<float>> RunUnderBoth(KernelIsa isa, int out_size,
                                             Fn&& fn) {
  std::vector<std::vector<float>> outs;
  {
    ScopedKernelIsa pin(KernelIsa::kScalar);
    outs.push_back(fn());
  }
  {
    ScopedKernelIsa pin(isa);
    outs.push_back(fn());
    outs.push_back(fn());
  }
  EXPECT_EQ(static_cast<int>(outs[0].size()), out_size);
  return outs;
}

TEST_P(KernelIsaContractTest, ElementwiseKernelsAreBitIdenticalToScalar) {
  Rng rng(101);
  // Sizes straddle every vector width and tail length.
  for (const int n : {1, 3, 4, 7, 8, 16, 33, 100}) {
    const std::vector<float> src = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    const std::vector<float> dst0 = RandomVec(n, rng);

    const auto add = RunUnderBoth(isa_, n, [&] {
      std::vector<float> dst = dst0;
      AddInto(dst.data(), src.data(), n);
      return dst;
    });
    EXPECT_TRUE(BitIdentical(add[0], add[1])) << "AddInto n=" << n;

    const auto sub = RunUnderBoth(isa_, n, [&] {
      std::vector<float> dst = dst0;
      SubInto(dst.data(), src.data(), n);
      return dst;
    });
    EXPECT_TRUE(BitIdentical(sub[0], sub[1])) << "SubInto n=" << n;

    const auto axpy = RunUnderBoth(isa_, n, [&] {
      std::vector<float> dst = dst0;
      AxpyInto(dst.data(), src.data(), 0.37f, n);
      return dst;
    });
    EXPECT_TRUE(BitIdentical(axpy[0], axpy[1])) << "AxpyInto n=" << n;

    const auto mul = RunUnderBoth(isa_, n, [&] {
      std::vector<float> dst(n);
      MulInto(dst.data(), src.data(), b.data(), n);
      return dst;
    });
    EXPECT_TRUE(BitIdentical(mul[0], mul[1])) << "MulInto n=" << n;
  }
}

TEST_P(KernelIsaContractTest, MatMulKernelsDeterministicAndNearScalar) {
  Rng rng(102);
  constexpr double kRelTol = 1e-4;
  // Shapes hit the 4x16 microkernel, its row/column tails, and tiny cases.
  const int shapes[][3] = {{1, 1, 1},   {2, 3, 5},   {4, 16, 16},
                           {5, 17, 19}, {8, 32, 24}, {13, 40, 33}};
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    const std::vector<float> a = RandomVec(n * k, rng);
    const std::vector<float> b = RandomVec(k * m, rng);
    const std::vector<float> dc = RandomVec(n * m, rng);
    const std::vector<float> c0 = RandomVec(n * m, rng);  // accumulate into

    const auto accum = RunUnderBoth(isa_, n * m, [&] {
      std::vector<float> c = c0;
      MatMulAccum(a.data(), b.data(), c.data(), n, k, m);
      return c;
    });
    EXPECT_TRUE(BitIdentical(accum[1], accum[2]))
        << "MatMulAccum nondeterministic " << n << "x" << k << "x" << m;
    EXPECT_LE(MaxRelDiff(accum[0], accum[1]), kRelTol)
        << "MatMulAccum " << n << "x" << k << "x" << m;

    const auto grad_a = RunUnderBoth(isa_, n * k, [&] {
      std::vector<float> da(static_cast<size_t>(n) * k, 0.25f);
      MatMulGradA(dc.data(), b.data(), da.data(), n, k, m);
      return da;
    });
    EXPECT_TRUE(BitIdentical(grad_a[1], grad_a[2]))
        << "MatMulGradA nondeterministic " << n << "x" << k << "x" << m;
    EXPECT_LE(MaxRelDiff(grad_a[0], grad_a[1]), kRelTol)
        << "MatMulGradA " << n << "x" << k << "x" << m;

    const auto grad_b = RunUnderBoth(isa_, k * m, [&] {
      std::vector<float> db(static_cast<size_t>(k) * m, -0.125f);
      MatMulGradB(a.data(), dc.data(), db.data(), n, k, m);
      return db;
    });
    EXPECT_TRUE(BitIdentical(grad_b[1], grad_b[2]))
        << "MatMulGradB nondeterministic " << n << "x" << k << "x" << m;
    EXPECT_LE(MaxRelDiff(grad_b[0], grad_b[1]), kRelTol)
        << "MatMulGradB " << n << "x" << k << "x" << m;
  }
}

TEST_P(KernelIsaContractTest, DotDeterministicAndNearScalar) {
  Rng rng(103);
  for (const int n : {1, 4, 7, 8, 31, 128, 1000}) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    float scalar_dot = 0.0f;
    {
      ScopedKernelIsa pin(KernelIsa::kScalar);
      scalar_dot = Dot(a.data(), b.data(), n);
    }
    ScopedKernelIsa pin(isa_);
    const float d1 = Dot(a.data(), b.data(), n);
    const float d2 = Dot(a.data(), b.data(), n);
    EXPECT_EQ(d1, d2) << "Dot nondeterministic n=" << n;
    const double denom = std::max(1.0, std::fabs(static_cast<double>(scalar_dot)));
    EXPECT_LE(std::fabs(static_cast<double>(scalar_dot) - d1) / denom, 1e-4)
        << "Dot n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelIsaContractTest,
                         ::testing::Values("scalar", "sse2", "avx2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace traj2hash::nn::kernels
