#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

TEST(TensorTest, MakeTensorZeroInitialised) {
  const Tensor t = MakeTensor(2, 3);
  EXPECT_EQ(t->rows(), 2);
  EXPECT_EQ(t->cols(), 3);
  EXPECT_EQ(t->size(), 6);
  for (const float v : t->value()) EXPECT_EQ(v, 0.0f);
  EXPECT_FALSE(t->requires_grad());
  EXPECT_TRUE(t->grad().empty());
}

TEST(TensorTest, FromValuesRowMajorLayout) {
  const Tensor t = FromValues(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t->at(0, 0), 1.0f);
  EXPECT_EQ(t->at(0, 1), 2.0f);
  EXPECT_EQ(t->at(1, 0), 3.0f);
  EXPECT_EQ(t->at(1, 1), 4.0f);
}

TEST(TensorTest, RequiresGradAllocatesGradBuffer) {
  const Tensor t = MakeTensor(2, 2, true);
  EXPECT_TRUE(t->requires_grad());
  EXPECT_EQ(t->grad().size(), 4u);
}

TEST(TensorTest, ZeroGradClearsAccumulation) {
  const Tensor p = FromValues(1, 1, {5.0f}, true);
  Backward(Mul(p, p));
  EXPECT_NE(p->grad()[0], 0.0f);
  p->ZeroGrad();
  EXPECT_EQ(p->grad()[0], 0.0f);
}

TEST(TensorTest, OpsOnConstantsBuildNoTape) {
  const Tensor a = FromValues(1, 2, {1.0f, 2.0f});
  const Tensor b = FromValues(1, 2, {3.0f, 4.0f});
  const Tensor c = Add(a, b);
  EXPECT_FALSE(c->requires_grad());
  EXPECT_TRUE(c->parents().empty());
  EXPECT_FALSE(static_cast<bool>(c->backward_fn()));
}

TEST(TensorTest, OpsOnParametersWireParents) {
  const Tensor a = FromValues(1, 2, {1.0f, 2.0f}, true);
  const Tensor b = FromValues(1, 2, {3.0f, 4.0f});
  const Tensor c = Add(a, b);
  EXPECT_TRUE(c->requires_grad());
  EXPECT_EQ(c->parents().size(), 2u);
}

TEST(TensorTest, DetachCutsGraph) {
  const Tensor a = FromValues(1, 2, {1.0f, 2.0f}, true);
  const Tensor d = Detach(Scale(a, 2.0f));
  EXPECT_FALSE(d->requires_grad());
  EXPECT_EQ(d->value()[0], 2.0f);
  EXPECT_EQ(d->value()[1], 4.0f);
}

TEST(TensorDeathTest, BackwardRequiresScalar) {
  const Tensor p = FromValues(1, 2, {1.0f, 2.0f}, true);
  EXPECT_DEATH(Backward(Scale(p, 2.0f)), "scalar");
}

TEST(TensorDeathTest, ShapeMismatchIsFatal) {
  const Tensor a = MakeTensor(2, 2);
  const Tensor b = MakeTensor(2, 3);
  EXPECT_DEATH(Add(a, b), "CHECK");
}

}  // namespace
}  // namespace traj2hash::nn
