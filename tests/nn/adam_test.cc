#include "nn/adam.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

TEST(AdamTest, MinimisesQuadratic) {
  // f(p) = sum (p - target)^2 with target = (1, -2, 3).
  const Tensor p = FromValues(1, 3, {0.0f, 0.0f, 0.0f}, true);
  const Tensor target = FromValues(1, 3, {1.0f, -2.0f, 3.0f});
  Adam opt({p}, AdamOptions{.lr = 0.05f});
  for (int step = 0; step < 500; ++step) {
    const Tensor diff = Sub(p, target);
    Backward(SumAll(Mul(diff, diff)));
    opt.Step();
  }
  EXPECT_NEAR(p->value()[0], 1.0f, 1e-2);
  EXPECT_NEAR(p->value()[1], -2.0f, 1e-2);
  EXPECT_NEAR(p->value()[2], 3.0f, 1e-2);
}

TEST(AdamTest, StepZeroesGradients) {
  const Tensor p = FromValues(1, 1, {1.0f}, true);
  Adam opt({p});
  Backward(Mul(p, p));
  EXPECT_NE(p->grad()[0], 0.0f);
  opt.Step();
  EXPECT_EQ(p->grad()[0], 0.0f);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // Adam's bias-corrected first update is lr * sign(g).
  const Tensor p = FromValues(1, 1, {2.0f}, true);
  Adam opt({p}, AdamOptions{.lr = 0.1f});
  Backward(Scale(p, 3.0f));  // constant gradient 3
  opt.Step();
  EXPECT_NEAR(p->value()[0], 2.0f - 0.1f, 1e-4);
}

TEST(AdamTest, ZeroGradDiscardsBatch) {
  const Tensor p = FromValues(1, 1, {1.0f}, true);
  Adam opt({p});
  Backward(Mul(p, p));
  opt.ZeroGrad();
  opt.Step();  // no accumulated gradient -> no movement
  EXPECT_FLOAT_EQ(p->value()[0], 1.0f);
}

TEST(AdamDeathTest, RejectsConstantParameters) {
  const Tensor c = FromValues(1, 1, {1.0f}, false);
  EXPECT_DEATH(Adam opt({c}), "CHECK");
}

}  // namespace
}  // namespace traj2hash::nn
