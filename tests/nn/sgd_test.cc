#include "nn/sgd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

TEST(SgdTest, PlainSgdStepIsLrTimesGradient) {
  const Tensor p = FromValues(1, 1, {2.0f}, true);
  Sgd opt({p}, SgdOptions{.lr = 0.1f});
  Backward(Scale(p, 3.0f));  // gradient 3
  opt.Step();
  EXPECT_NEAR(p->value()[0], 2.0f - 0.3f, 1e-6);
  EXPECT_NEAR(opt.last_grad_norm(), 3.0, 1e-6);
}

TEST(SgdTest, MinimisesQuadratic) {
  const Tensor p = FromValues(1, 3, {5.0f, -5.0f, 2.0f}, true);
  const Tensor target = FromValues(1, 3, {1.0f, -2.0f, 3.0f});
  Sgd opt({p}, SgdOptions{.lr = 0.1f, .momentum = 0.5f});
  for (int step = 0; step < 200; ++step) {
    const Tensor diff = Sub(p, target);
    Backward(SumAll(Mul(diff, diff)));
    opt.Step();
  }
  EXPECT_NEAR(p->value()[0], 1.0f, 1e-3);
  EXPECT_NEAR(p->value()[1], -2.0f, 1e-3);
  EXPECT_NEAR(p->value()[2], 3.0f, 1e-3);
}

TEST(SgdTest, MomentumAcceleratesAlongConstantGradient) {
  const Tensor plain = FromValues(1, 1, {0.0f}, true);
  const Tensor with_mom = FromValues(1, 1, {0.0f}, true);
  Sgd opt_plain({plain}, SgdOptions{.lr = 0.1f});
  Sgd opt_mom({with_mom}, SgdOptions{.lr = 0.1f, .momentum = 0.9f});
  for (int i = 0; i < 10; ++i) {
    Backward(Scale(plain, 1.0f));
    opt_plain.Step();
    Backward(Scale(with_mom, 1.0f));
    opt_mom.Step();
  }
  EXPECT_LT(with_mom->value()[0], plain->value()[0]);  // moved further (down)
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  const Tensor p = FromValues(1, 1, {10.0f}, true);
  Sgd opt({p}, SgdOptions{.lr = 0.1f, .weight_decay = 0.5f});
  // No loss gradient at all: only decay acts.
  opt.Step();
  EXPECT_NEAR(p->value()[0], 10.0f - 0.1f * 0.5f * 10.0f, 1e-5);
}

TEST(SgdTest, ClippingBoundsTheUpdate) {
  const Tensor p = FromValues(1, 1, {0.0f}, true);
  Sgd opt({p}, SgdOptions{.lr = 1.0f, .clip_norm = 1.0f});
  Backward(Scale(p, 100.0f));  // gradient 100 >> clip 1
  opt.Step();
  EXPECT_NEAR(p->value()[0], -1.0f, 1e-5);
  EXPECT_NEAR(opt.last_grad_norm(), 100.0, 1e-3);
}

TEST(SgdTest, StepZeroesGradients) {
  const Tensor p = FromValues(1, 1, {1.0f}, true);
  Sgd opt({p});
  Backward(Mul(p, p));
  opt.Step();
  EXPECT_EQ(p->grad()[0], 0.0f);
}

}  // namespace
}  // namespace traj2hash::nn
