// Finite-difference gradient verification for every differentiable op.
//
// Each case builds a scalar loss from a parameter tensor through the op
// under test and compares analytic gradients against central differences
// (nn::MaxGradError). A parameterised sweep covers multiple shapes.

#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/ops.h"

namespace traj2hash::nn {
namespace {

constexpr double kTol = 2e-2;  // float forward + 1e-3 step central diff

Tensor RandomTensor(int rows, int cols, Rng& rng, bool requires_grad = true,
                    float scale = 1.0f) {
  Tensor t = MakeTensor(rows, cols, requires_grad);
  for (float& v : t->value()) {
    v = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return t;
}

/// Reduces any tensor to a scalar with non-uniform weights, so gradient
/// errors cannot cancel out.
Tensor WeightedSum(const Tensor& t) {
  Tensor weights = MakeTensor(t->rows(), t->cols(), false);
  for (int i = 0; i < weights->size(); ++i) {
    weights->value()[i] = 0.1f * static_cast<float>(i + 1);
  }
  return SumAll(Mul(t, weights));
}

struct OpCase {
  std::string name;
  // Builds loss(param, other) for a [rows, cols] param.
  std::function<Tensor(const Tensor& param, const Tensor& other)> build;
  float param_scale = 1.0f;
};

class OpGradTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradTest, MatchesFiniteDifferences) {
  const OpCase& op_case = GetParam();
  Rng rng(7);
  const Tensor param = RandomTensor(3, 4, rng, true, op_case.param_scale);
  const Tensor other = RandomTensor(3, 4, rng, false);
  const double err = MaxGradError(
      param, [&] { return op_case.build(param, other); });
  EXPECT_LT(err, kTol) << op_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradTest,
    ::testing::Values(
        OpCase{"Add",
               [](const Tensor& p, const Tensor& o) {
                 return WeightedSum(Add(p, o));
               }},
        OpCase{"Sub",
               [](const Tensor& p, const Tensor& o) {
                 return WeightedSum(Sub(p, o));
               }},
        OpCase{"Mul",
               [](const Tensor& p, const Tensor& o) {
                 return WeightedSum(Mul(p, o));
               }},
        OpCase{"MulSelf",  // both parents are the same tensor
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Mul(p, p));
               }},
        OpCase{"Div",
               [](const Tensor& p, const Tensor& o) {
                 return WeightedSum(Div(p, AddScalar(Mul(o, o), 1.0f)));
               }},
        OpCase{"Scale",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Scale(p, -2.5f));
               }},
        OpCase{"AddScalar",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(AddScalar(p, 3.0f));
               }},
        OpCase{"Relu",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Relu(p));
               }},
        OpCase{"Tanh",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Tanh(p));
               }},
        OpCase{"Sigmoid",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Sigmoid(p));
               }},
        OpCase{"Exp",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Exp(p));
               }},
        OpCase{"Log",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Log(AddScalar(Mul(p, p), 1.0f)));
               }},
        OpCase{"Sqrt",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Sqrt(AddScalar(Mul(p, p), 1.0f)));
               }},
        OpCase{"SoftmaxRows",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(SoftmaxRows(p));
               }},
        OpCase{"Transpose",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(Transpose(p));
               }},
        OpCase{"ConcatCols",
               [](const Tensor& p, const Tensor& o) {
                 return WeightedSum(ConcatCols(p, o));
               }},
        OpCase{"ConcatRows",
               [](const Tensor& p, const Tensor& o) {
                 return WeightedSum(ConcatRows(p, o));
               }},
        OpCase{"SliceRows",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(SliceRows(p, 1, 3));
               }},
        OpCase{"SliceCols",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(SliceCols(p, 1, 3));
               }},
        OpCase{"MeanRows",
               [](const Tensor& p, const Tensor&) {
                 return WeightedSum(MeanRows(p));
               }},
        OpCase{"SumAll",
               [](const Tensor& p, const Tensor&) { return SumAll(p); }},
        OpCase{"GatherRows",
               [](const Tensor& p, const Tensor&) {
                 // Repeated index exercises scatter-accumulate.
                 return WeightedSum(GatherRows(p, {0, 2, 2}));
               }},
        OpCase{"ScaleByScalarParamIsVector",
               [](const Tensor& p, const Tensor&) {
                 const Tensor s = SumAll(SliceRows(p, 0, 1));
                 return WeightedSum(ScaleByScalar(SliceRows(p, 1, 3), s));
               }},
        OpCase{"EuclideanDistanceComposite",
               [](const Tensor& p, const Tensor& o) {
                 return EuclideanDistance(SliceRows(p, 0, 1),
                                          SliceRows(o, 1, 2));
               }}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(MatMulGradTest, BothSides) {
  Rng rng(3);
  const Tensor a = RandomTensor(3, 5, rng);
  const Tensor b = RandomTensor(5, 2, rng);
  const double err_a =
      MaxGradError(a, [&] { return WeightedSum(MatMul(a, b)); });
  const double err_b =
      MaxGradError(b, [&] { return WeightedSum(MatMul(a, b)); });
  EXPECT_LT(err_a, kTol);
  EXPECT_LT(err_b, kTol);
}

TEST(DotGradTest, VectorInputs) {
  Rng rng(4);
  const Tensor a = RandomTensor(1, 6, rng);
  const Tensor b = RandomTensor(1, 6, rng);
  const double err = MaxGradError(a, [&] { return Dot(a, b); });
  EXPECT_LT(err, kTol);
}

TEST(BackwardTest, GradientAccumulatesAcrossCalls) {
  const Tensor p = FromValues(1, 1, {2.0f}, true);
  const Tensor l1 = Mul(p, p);
  Backward(l1);
  const float once = p->grad()[0];
  const Tensor l2 = Mul(p, p);
  Backward(l2);
  EXPECT_FLOAT_EQ(p->grad()[0], 2.0f * once);
}

TEST(BackwardTest, DiamondGraphCountsBothPaths) {
  // loss = p*p + p*p through two distinct intermediate nodes.
  const Tensor p = FromValues(1, 1, {3.0f}, true);
  const Tensor left = Mul(p, p);
  const Tensor right = Mul(p, p);
  Backward(Add(left, right));
  EXPECT_FLOAT_EQ(p->grad()[0], 12.0f);  // d/dp (2 p^2) = 4p
}

TEST(BackwardTest, DeepChainDoesNotOverflowStack) {
  Tensor x = FromValues(1, 4, {0.1f, 0.2f, 0.3f, 0.4f}, true);
  Tensor h = x;
  for (int i = 0; i < 20000; ++i) h = AddScalar(h, 1e-6f);
  Backward(SumAll(h));
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x->grad()[i], 1.0f);
}

}  // namespace
}  // namespace traj2hash::nn
