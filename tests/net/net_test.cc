// Unit tests for the loopback socket + framing layer (DESIGN.md §16):
// frame roundtrips, reassembly of frames split across TCP segments, CRC /
// type / length corruption detected as kDataLoss, deadlines that keep
// partial buffers, EOF told apart from corruption, and the injected network
// faults (torn send, failed recv, accept-then-close).
#include "net/framing.h"
#include "net/socket.h"

#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/serialize.h"

namespace traj2hash::net {
namespace {

/// One connected loopback socket pair (server side accepted, client side
/// connected), torn down with the fixture.
struct Pair {
  Pair() {
    auto listener = Listener::Listen(0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listening = std::move(listener).value();
    auto connected = Socket::Connect("127.0.0.1", listening.port(), 1000.0);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    client = std::move(connected).value();
    auto accepted = listening.Accept(1000.0);
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
    server = std::move(accepted).value();
  }

  Listener listening;
  Socket client;
  Socket server;
};

/// Hand-serialised wire form of one frame, for tests that need to corrupt
/// or split it below the WriteFrame API.
std::string RawFrame(FrameType type, const std::string& payload) {
  std::string wire;
  AppendPod(wire, static_cast<uint8_t>(type));
  AppendPod(wire, static_cast<uint32_t>(payload.size()));
  AppendPod(wire, Crc32(payload));
  wire += payload;
  return wire;
}

TEST(FramingTest, RoundtripsTypesAndPayloads) {
  Pair pair;
  const std::pair<FrameType, std::string> frames[] = {
      {FrameType::kHello, std::string("\x01\x02\x03", 3)},
      {FrameType::kResume, ""},
      {FrameType::kRecord, std::string(1000, 'r')},
      {FrameType::kSnapshotChunk, std::string(3 * kSnapshotChunkBytes, 'x')},
      {FrameType::kHeartbeat, std::string("\0\0\0\0\0\0\0\0", 8)},
  };
  std::thread writer([&pair, &frames] {
    for (const auto& [type, payload] : frames) {
      EXPECT_TRUE(WriteFrame(pair.client, type, payload, 2000.0).ok());
    }
  });
  FrameReader reader(&pair.server);
  for (const auto& [want_type, want_payload] : frames) {
    FrameType type;
    std::string payload;
    ASSERT_TRUE(reader.ReadFrame(&type, &payload, 2000.0).ok());
    EXPECT_EQ(type, want_type);
    EXPECT_EQ(payload, want_payload);
  }
  writer.join();
}

TEST(FramingTest, ReassemblesFrameSplitAcrossSends) {
  Pair pair;
  const std::string wire = RawFrame(FrameType::kRecord, "split-me");
  const size_t half = wire.size() / 2;
  ASSERT_TRUE(pair.client.SendAll(wire.data(), half, 1000.0).ok());

  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  // Only half a frame exists: the read must time out, keeping what arrived.
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 20.0).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_GT(reader.buffered_bytes(), 0u);

  ASSERT_TRUE(
      pair.client.SendAll(wire.data() + half, wire.size() - half, 1000.0).ok());
  ASSERT_TRUE(reader.ReadFrame(&type, &payload, 1000.0).ok());
  EXPECT_EQ(type, FrameType::kRecord);
  EXPECT_EQ(payload, "split-me");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FramingTest, CrcMismatchIsDataLoss) {
  Pair pair;
  std::string wire = RawFrame(FrameType::kRecord, "payload");
  wire.back() ^= 0x40;  // flip a payload bit; the header CRC no longer holds
  ASSERT_TRUE(pair.client.SendAll(wire.data(), wire.size(), 1000.0).ok());
  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 1000.0).code(),
            StatusCode::kDataLoss);
}

TEST(FramingTest, UnknownTypeIsDataLoss) {
  Pair pair;
  const std::string wire = RawFrame(static_cast<FrameType>(99), "");
  ASSERT_TRUE(pair.client.SendAll(wire.data(), wire.size(), 1000.0).ok());
  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 1000.0).code(),
            StatusCode::kDataLoss);
}

TEST(FramingTest, ImplausibleLengthIsDataLoss) {
  Pair pair;
  std::string wire;
  AppendPod(wire, static_cast<uint8_t>(FrameType::kRecord));
  AppendPod(wire, kMaxFramePayload + 1);  // no such payload follows
  AppendPod(wire, static_cast<uint32_t>(0));
  ASSERT_TRUE(pair.client.SendAll(wire.data(), wire.size(), 1000.0).ok());
  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 1000.0).code(),
            StatusCode::kDataLoss);
}

TEST(FramingTest, CleanEofIsUnavailable) {
  Pair pair;
  pair.client.Close();
  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 1000.0).code(),
            StatusCode::kUnavailable);
}

TEST(FramingTest, TornFrameAtEofIsUnavailableNotCorruption) {
  Pair pair;
  const std::string wire = RawFrame(FrameType::kRecord, "torn");
  ASSERT_TRUE(pair.client.SendAll(wire.data(), wire.size() - 2, 1000.0).ok());
  pair.client.Close();  // the sender died mid-frame
  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  // A prefix of a frame followed by EOF is a torn send: the data was never
  // acknowledged, so this is unavailability, not kDataLoss.
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 1000.0).code(),
            StatusCode::kUnavailable);
}

TEST(SocketFaultTest, InjectedTornSendIsIoErrorAndPeerSeesPartialThenEof) {
  Pair pair;
  FaultInjector fi;
  fi.Arm(faults::kNetSend, 0, 1);
  FaultInjector::Scope scope(&fi);
  const std::string wire = RawFrame(FrameType::kRecord, std::string(256, 'p'));
  EXPECT_EQ(pair.client.SendAll(wire.data(), wire.size(), 1000.0).code(),
            StatusCode::kIoError);
  EXPECT_EQ(fi.fired(faults::kNetSend), 1);

  FrameReader reader(&pair.server);
  FrameType type;
  std::string payload;
  // Half the frame arrived, then the shutdown: a torn frame at EOF.
  EXPECT_EQ(reader.ReadFrame(&type, &payload, 1000.0).code(),
            StatusCode::kUnavailable);
  EXPECT_GT(reader.buffered_bytes(), 0u);
  EXPECT_LT(reader.buffered_bytes(), wire.size());
}

TEST(SocketFaultTest, InjectedRecvFailureIsIoError) {
  Pair pair;
  const char byte = 'x';
  ASSERT_TRUE(pair.client.SendAll(&byte, 1, 1000.0).ok());
  FaultInjector fi;
  fi.Arm(faults::kNetRecv, 0, 1);
  FaultInjector::Scope scope(&fi);
  char out;
  EXPECT_EQ(pair.server.RecvSome(&out, 1, 1000.0).status().code(),
            StatusCode::kIoError);
}

TEST(SocketFaultTest, InjectedAcceptFaultClosesThePeer) {
  auto listener = Listener::Listen(0);
  ASSERT_TRUE(listener.ok());
  Listener listening = std::move(listener).value();
  auto connected = Socket::Connect("127.0.0.1", listening.port(), 1000.0);
  ASSERT_TRUE(connected.ok());
  Socket client = std::move(connected).value();

  FaultInjector fi;
  fi.Arm(faults::kNetAccept, 0, 1);
  {
    FaultInjector::Scope scope(&fi);
    EXPECT_EQ(listening.Accept(1000.0).status().code(),
              StatusCode::kUnavailable);
  }
  // The fault accepted then instantly closed: the client connected fine but
  // the first read finds EOF.
  char out;
  EXPECT_EQ(client.RecvSome(&out, 1, 1000.0).status().code(),
            StatusCode::kUnavailable);
}

TEST(SocketTest, ConnectToClosedPortIsUnavailable) {
  // Bind an ephemeral port, then close it: connecting must be refused.
  auto listener = Listener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener.value().port();
  listener.value().Close();
  EXPECT_EQ(Socket::Connect("127.0.0.1", port, 500.0).status().code(),
            StatusCode::kUnavailable);
}

TEST(SocketTest, ListenerShutdownWakesBlockedAccept) {
  auto listener = Listener::Listen(0);
  ASSERT_TRUE(listener.ok());
  Listener listening = std::move(listener).value();
  std::thread closer([&listening] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listening.Shutdown();
  });
  // Blocks until the cross-thread Shutdown, well inside the 5 s deadline.
  EXPECT_EQ(listening.Accept(5000.0).status().code(),
            StatusCode::kUnavailable);
  closer.join();
}

TEST(SocketTest, ShutdownWakesBlockedRecv) {
  Pair pair;
  std::thread closer([&pair] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.server.Shutdown();
  });
  char out;
  const auto got = pair.server.RecvSome(&out, 1, 5000.0);
  EXPECT_FALSE(got.ok());
  closer.join();
}

TEST(SocketTest, RecvDeadlineExpiresWithoutData) {
  Pair pair;
  char out;
  EXPECT_EQ(pair.server.RecvSome(&out, 1, 20.0).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace traj2hash::net
