// t2vec and CL-TSim self-supervised training tests.

#include <gtest/gtest.h>
#include <cmath>

#include "baselines/cltsim.h"
#include "baselines/t2vec.h"
#include "traj/augment.h"
#include "traj/synthetic.h"

namespace traj2hash::baselines {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  traj::Normalizer normalizer;
};

Env MakeEnv(int n = 20, uint64_t seed = 41) {
  Env env;
  Rng rng(seed);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, n, rng);
  env.normalizer.Fit(env.corpus);
  return env;
}

TEST(T2VecTest, EmbeddingShape) {
  Env env = MakeEnv(5);
  Rng rng(1);
  T2VecEncoder enc(10, &env.normalizer, rng);
  EXPECT_EQ(enc.dim(), 10);
  EXPECT_EQ(enc.name(), "t2vec");
  EXPECT_EQ(enc.Embed(env.corpus[0]).size(), 10u);
}

TEST(T2VecTest, ReconstructionLossDecreasesOverEpochs) {
  Env env = MakeEnv(16);
  Rng rng(2);
  T2VecEncoder enc(10, &env.normalizer, rng);
  T2VecOptions one;
  one.epochs = 1;
  const double first = enc.Fit(env.corpus, one, rng);
  T2VecOptions more;
  more.epochs = 4;
  const double later = enc.Fit(env.corpus, more, rng);
  EXPECT_LT(later, first);
}

TEST(T2VecTest, NearbyTrajectoriesCloserThanFarOnes) {
  Env env = MakeEnv(24, 43);
  Rng rng(3);
  T2VecEncoder enc(12, &env.normalizer, rng);
  T2VecOptions opt;
  opt.epochs = 3;
  enc.Fit(env.corpus, opt, rng);
  // A trajectory vs its own slightly distorted copy must embed closer than
  // vs a random other trajectory (robustness goal of t2vec).
  Rng aug_rng(4);
  int wins = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    const traj::Trajectory& t = env.corpus[i];
    const traj::Trajectory noisy = traj::Distort(t, 20.0, aug_rng);
    const auto et = enc.Embed(t);
    const auto en = enc.Embed(noisy);
    const auto eo = enc.Embed(env.corpus[(i + 12) % env.corpus.size()]);
    double d_noisy = 0, d_other = 0;
    for (size_t d = 0; d < et.size(); ++d) {
      d_noisy += (et[d] - en[d]) * (et[d] - en[d]);
      d_other += (et[d] - eo[d]) * (et[d] - eo[d]);
    }
    if (d_noisy < d_other) ++wins;
  }
  EXPECT_GE(wins, trials * 7 / 10);
}

TEST(ClTsimTest, EmbeddingShape) {
  Env env = MakeEnv(5);
  Rng rng(5);
  ClTsimEncoder enc(10, &env.normalizer, rng);
  EXPECT_EQ(enc.dim(), 10);
  EXPECT_EQ(enc.name(), "CL-TSim");
  EXPECT_EQ(enc.Embed(env.corpus[0]).size(), 10u);
}

TEST(ClTsimTest, InfoNceLossDecreases) {
  Env env = MakeEnv(24, 44);
  Rng rng(6);
  ClTsimEncoder enc(10, &env.normalizer, rng);
  ClTsimOptions one;
  one.epochs = 1;
  one.batch_size = 8;
  const double first = enc.Fit(env.corpus, one, rng);
  ClTsimOptions more;
  more.epochs = 4;
  more.batch_size = 8;
  const double later = enc.Fit(env.corpus, more, rng);
  EXPECT_LT(later, first);
}

TEST(ClTsimTest, LossBoundedByLogBatch) {
  // InfoNCE with batch b has a ln(b) ceiling at chance level; a trained
  // model must beat chance.
  Env env = MakeEnv(16, 45);
  Rng rng(7);
  ClTsimEncoder enc(8, &env.normalizer, rng);
  ClTsimOptions opt;
  opt.epochs = 3;
  opt.batch_size = 8;
  const double loss = enc.Fit(env.corpus, opt, rng);
  EXPECT_LT(loss, std::log(8.0) + 0.5);
}

}  // namespace
}  // namespace traj2hash::baselines
