// Statistical property tests for Fresh LSH: collision probability must
// decay with curve distance, averaged over many independent hash families
// (the locality-sensitivity property the original paper proves for Frechet
// balls).

#include <gtest/gtest.h>

#include "baselines/fresh.h"
#include "traj/augment.h"

namespace traj2hash::baselines {
namespace {

traj::Trajectory ZigZag(double scale) {
  traj::Trajectory t;
  for (int i = 0; i < 12; ++i) {
    t.points.push_back(
        {i * 400.0, (i % 2 == 0 ? 0.0 : 1.0) * scale + 200.0});
  }
  return t;
}

/// Mean normalised Hamming distance between the codes of `a` and `b` over
/// `families` independent hash families.
double MeanCodeDistance(const traj::Trajectory& a, const traj::Trajectory& b,
                        int families) {
  double total = 0.0;
  for (int f = 0; f < families; ++f) {
    Rng rng(1000 + f);
    FreshLsh lsh(FreshOptions{}, rng);
    total += static_cast<double>(
                 search::HammingDistance(lsh.CodeOf(a), lsh.CodeOf(b))) /
             lsh.num_bits();
  }
  return total / families;
}

TEST(FreshPropertyTest, CodeDistanceGrowsWithCurveDistance) {
  const traj::Trajectory base = ZigZag(300.0);
  Rng aug(5);
  // Perturbations of increasing magnitude relative to the 1 km resolution.
  const traj::Trajectory near = traj::Distort(base, 20.0, aug);
  const traj::Trajectory mid = traj::Distort(base, 400.0, aug);
  traj::Trajectory far = base;
  for (traj::Point& p : far.points) {
    p.x += 5000.0;
    p.y += 7000.0;
  }
  const int families = 24;
  const double d_near = MeanCodeDistance(base, near, families);
  const double d_mid = MeanCodeDistance(base, mid, families);
  const double d_far = MeanCodeDistance(base, far, families);
  EXPECT_LT(d_near, d_mid);
  EXPECT_LT(d_mid, d_far + 0.1);  // far curves saturate near random (~0.5)
  EXPECT_LT(d_near, 0.3);
  EXPECT_GT(d_far, 0.3);
}

TEST(FreshPropertyTest, IdenticalCurvesAlwaysCollide) {
  const traj::Trajectory base = ZigZag(250.0);
  for (int f = 0; f < 10; ++f) {
    Rng rng(2000 + f);
    FreshLsh lsh(FreshOptions{}, rng);
    EXPECT_EQ(search::HammingDistance(lsh.CodeOf(base), lsh.CodeOf(base)), 0);
  }
}

TEST(FreshPropertyTest, ResolutionControlsSensitivity) {
  // Finer grids separate a 200 m perturbation more often than coarse grids.
  const traj::Trajectory base = ZigZag(300.0);
  Rng aug(6);
  const traj::Trajectory moved = traj::Distort(base, 200.0, aug);
  auto mean_distance = [&](double resolution) {
    double total = 0.0;
    const int families = 24;
    for (int f = 0; f < families; ++f) {
      Rng rng(3000 + f);
      FreshOptions opt;
      opt.resolution_m = resolution;
      FreshLsh lsh(opt, rng);
      total += static_cast<double>(search::HammingDistance(
                   lsh.CodeOf(base), lsh.CodeOf(moved))) /
               lsh.num_bits();
    }
    return total / families;
  };
  EXPECT_GT(mean_distance(250.0), mean_distance(4000.0));
}

}  // namespace
}  // namespace traj2hash::baselines
