#include "baselines/hash_head.h"

#include <gtest/gtest.h>

#include "search/code.h"

namespace traj2hash::baselines {
namespace {

/// Synthetic "frozen embeddings": random 2-D points, embedding = the point's
/// coordinates replicated with noise, ground truth = planar Euclidean
/// distance. Sign hyperplanes can separate such a space, so a working hash
/// head must learn rank-preserving codes.
struct Fixture {
  std::vector<std::vector<float>> embeddings;
  std::vector<double> distances;
};

Fixture PlaneFixture(int n, int dim, Rng& rng) {
  Fixture f;
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  for (int i = 0; i < n; ++i) {
    std::vector<float> e(dim);
    for (int d = 0; d < dim; ++d) {
      const double coord = d % 2 == 0 ? pos[i].first : pos[i].second;
      e[d] = static_cast<float>(coord + rng.Gaussian(0.02));
    }
    f.embeddings.push_back(e);
  }
  f.distances.resize(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      f.distances[static_cast<size_t>(i) * n + j] =
          std::sqrt(dx * dx + dy * dy);
    }
  }
  return f;
}

TEST(HashHeadTest, CodeWidthMatchesConfig) {
  Rng rng(1);
  HashHead head(8, 24, rng);
  EXPECT_EQ(head.num_bits(), 24);
  const search::Code c = head.CodeOf(std::vector<float>(8, 0.5f));
  EXPECT_EQ(c.num_bits, 24);
}

TEST(HashHeadTest, FitRejectsBadShapes) {
  Rng rng(2);
  HashHead head(4, 8, rng);
  HashHeadOptions opt;
  EXPECT_FALSE(head.Fit({{1, 2, 3, 4}}, {0.0}, opt, rng).ok());
  Fixture f = PlaneFixture(8, 3, rng);  // wrong width
  EXPECT_FALSE(head.Fit(f.embeddings, f.distances, opt, rng).ok());
}

TEST(HashHeadTest, TrainingImprovesHammingRankAgreement) {
  Rng rng(3);
  const int n = 48, dim = 6;
  Fixture f = PlaneFixture(n, dim, rng);
  HashHead head(dim, 16, rng);

  auto rank_agreement = [&] {
    // Fraction of (near, far) pairs ordered correctly by Hamming distance;
    // only pairs whose ground-truth distances differ by 2x are scored so the
    // ordering is unambiguous.
    std::vector<search::Code> codes = head.CodeAll(f.embeddings);
    int correct = 0, total = 0;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        for (int c = b + 1; c < n; ++c) {
          if (b == a || c == a) continue;
          double d_b = f.distances[a * n + b];
          double d_c = f.distances[a * n + c];
          int near = b, far = c;
          if (d_b > d_c) {
            std::swap(near, far);
            std::swap(d_b, d_c);
          }
          if (d_c < 2.0 * d_b) continue;  // ambiguous pair
          ++total;
          if (search::HammingDistance(codes[a], codes[near]) <
              search::HammingDistance(codes[a], codes[far])) {
            ++correct;
          }
        }
      }
    }
    return total > 0 ? static_cast<double>(correct) / total : 0.0;
  };

  const double before = rank_agreement();
  HashHeadOptions opt;
  opt.epochs = 30;
  opt.alpha = 4.0f;
  const auto loss = head.Fit(f.embeddings, f.distances, opt, rng);
  ASSERT_TRUE(loss.ok()) << loss.status().ToString();
  const double after = rank_agreement();
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.6);
}

TEST(HashHeadTest, CodeAllMatchesCodeOf) {
  Rng rng(4);
  HashHead head(4, 8, rng);
  std::vector<std::vector<float>> embs = {{1, 2, 3, 4}, {-1, 0.5, -2, 3}};
  const auto all = head.CodeAll(embs);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], head.CodeOf(embs[0]));
  EXPECT_EQ(all[1], head.CodeOf(embs[1]));
}

}  // namespace
}  // namespace traj2hash::baselines
