#include "baselines/trajgat.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "traj/synthetic.h"

namespace traj2hash::baselines {
namespace {

TEST(PrQuadtreeTest, UnbuiltTreeIsSingleLeaf) {
  PrQuadtree tree({0, 0, 100, 100}, 6, 4);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.LeafOf({50, 50}), 0);
}

TEST(PrQuadtreeTest, SplitsDenseRegions) {
  PrQuadtree tree({0, 0, 100, 100}, 6, 2);
  std::vector<traj::Point> pts;
  // 20 points clustered in the south-west corner, 1 in the north-east.
  for (int i = 0; i < 20; ++i) pts.push_back({1.0 + 0.1 * i, 1.0 + 0.05 * i});
  pts.push_back({90, 90});
  tree.Build(pts);
  EXPECT_GT(tree.num_leaves(), 4);
  // The dense corner's leaf is deeper (smaller) than the sparse corner's.
  const auto& dense = tree.leaf(tree.LeafOf({1.5, 1.2}));
  const auto& sparse = tree.leaf(tree.LeafOf({90, 90}));
  EXPECT_GT(dense.depth, sparse.depth);
  EXPECT_LT(dense.half_size, sparse.half_size);
}

TEST(PrQuadtreeTest, EveryPointMapsToLeafContainingIt) {
  Rng rng(1);
  PrQuadtree tree({0, 0, 1000, 1000}, 8, 4);
  std::vector<traj::Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  tree.Build(pts);
  for (const traj::Point& p : pts) {
    const auto& leaf = tree.leaf(tree.LeafOf(p));
    EXPECT_LE(std::abs(p.x - leaf.center.x), leaf.half_size + 1e-9);
    EXPECT_LE(std::abs(p.y - leaf.center.y), leaf.half_size + 1e-9);
  }
}

TEST(PrQuadtreeTest, MaxDepthBoundsRecursion) {
  PrQuadtree tree({0, 0, 100, 100}, 2, 1);
  std::vector<traj::Point> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({1.0, 1.0});  // same location
  tree.Build(pts);
  for (int l = 0; l < tree.num_leaves(); ++l) {
    EXPECT_LE(tree.leaf(l).depth, 2);
  }
}

TEST(PrQuadtreeTest, OutsidePointsClampIntoBox) {
  PrQuadtree tree({0, 0, 100, 100}, 4, 2);
  const int leaf = tree.LeafOf({-50, 500});
  EXPECT_GE(leaf, 0);
  EXPECT_LT(leaf, tree.num_leaves());
}

TEST(TrajGatEncoderTest, EncodesToConfiguredDim) {
  Rng rng(2);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 14;
  const auto corpus = GenerateTrips(city, 20, rng);
  const traj::BoundingBox box = traj::ComputeBoundingBox(corpus);
  PrQuadtree tree(box, 8, 8);
  std::vector<traj::Point> all;
  for (const auto& t : corpus) {
    all.insert(all.end(), t.points.begin(), t.points.end());
  }
  tree.Build(all);
  TrajGatEncoder enc(16, 1, 2, &tree, box, rng);
  EXPECT_EQ(enc.name(), "TrajGAT");
  EXPECT_EQ(enc.Embed(corpus[0]).size(), 16u);
  EXPECT_NE(enc.Embed(corpus[0]), enc.Embed(corpus[1]));
  EXPECT_FALSE(enc.TrainableParameters().empty());
}

}  // namespace
}  // namespace traj2hash::baselines
