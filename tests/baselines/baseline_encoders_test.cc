// Shape/parameter/behaviour tests for the GRU and Transformer baselines plus
// the shared WMSE metric trainer.

#include <gtest/gtest.h>

#include "baselines/metric_trainer.h"
#include "eval/metrics.h"
#include "baselines/neutraj.h"
#include "baselines/transformer.h"
#include "distance/distance.h"
#include "traj/synthetic.h"

namespace traj2hash::baselines {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  traj::Normalizer normalizer;
  traj::Grid grid = traj::Grid::Create({0, 0, 1, 1}, 1.0).value();
};

Env MakeEnv(int n = 40, uint64_t seed = 31) {
  Env env;
  Rng rng(seed);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, n, rng);
  env.normalizer.Fit(env.corpus);
  env.grid =
      traj::Grid::Create(traj::ComputeBoundingBox(env.corpus), 50.0).value();
  return env;
}

TEST(GruTrajEncoderTest, EmbeddingShapeAndName) {
  Env env = MakeEnv(5);
  Rng rng(1);
  GruTrajEncoder enc(12, &env.normalizer, rng);
  EXPECT_EQ(enc.dim(), 12);
  EXPECT_EQ(enc.name(), "NT-No-SAM");
  EXPECT_EQ(enc.Embed(env.corpus[0]).size(), 12u);
}

TEST(GruTrajEncoderTest, DifferentTrajectoriesDifferentEmbeddings) {
  Env env = MakeEnv(5);
  Rng rng(2);
  GruTrajEncoder enc(12, &env.normalizer, rng);
  EXPECT_NE(enc.Embed(env.corpus[0]), enc.Embed(env.corpus[1]));
}

TEST(NeuTrajEncoderTest, MemoryPopulatesAndInfluencesEncoding) {
  Env env = MakeEnv(6);
  Rng rng(3);
  NeuTrajEncoder enc(12, &env.normalizer, &env.grid, rng);
  // First pass: memory empty at start, populated afterwards.
  const std::vector<float> first = enc.Embed(env.corpus[0]);
  // Second pass over the same trajectory reads its own memory.
  const std::vector<float> second = enc.Embed(env.corpus[0]);
  EXPECT_EQ(first.size(), 12u);
  // The gated memory read makes repeat encodings differ (state-dependent).
  EXPECT_NE(first, second);
  enc.ClearMemory();
  const std::vector<float> third = enc.Embed(env.corpus[0]);
  EXPECT_EQ(first, third);  // cleared memory reproduces the first pass
}

TEST(NeuTrajEncoderTest, HasMoreParametersThanPlainGru) {
  Env env = MakeEnv(4);
  Rng rng(4);
  GruTrajEncoder plain(12, &env.normalizer, rng);
  NeuTrajEncoder sam(12, &env.normalizer, &env.grid, rng);
  EXPECT_GT(sam.TrainableParameters().size(),
            plain.TrainableParameters().size());
}

TEST(TransformerEncoderTest, ReadOutVariantsNameAndShape) {
  Env env = MakeEnv(4);
  Rng rng(5);
  TransformerEncoder cls(16, 1, 2, core::ReadOut::kCls, &env.normalizer, rng);
  TransformerEncoder mean(16, 1, 2, core::ReadOut::kMean, &env.normalizer,
                          rng);
  TransformerEncoder lb(16, 1, 2, core::ReadOut::kLowerBound, &env.normalizer,
                        rng);
  EXPECT_EQ(cls.name(), "Transformer");
  EXPECT_EQ(mean.name(), "Transformer-Mean");
  EXPECT_EQ(lb.name(), "Transformer-LowerBound");
  EXPECT_EQ(cls.Embed(env.corpus[0]).size(), 16u);
  EXPECT_EQ(mean.Embed(env.corpus[0]).size(), 16u);
  EXPECT_EQ(lb.Embed(env.corpus[0]).size(), 16u);
}

TEST(MetricTrainerTest, RejectsBadData) {
  Env env = MakeEnv(8);
  Rng rng(6);
  GruTrajEncoder enc(8, &env.normalizer, rng);
  MetricTrainOptions opt;
  std::vector<traj::Trajectory> seeds(env.corpus.begin(),
                                      env.corpus.begin() + 8);
  EXPECT_FALSE(
      TrainMetric(&enc, seeds, {1.0, 2.0}, {}, {}, {}, opt, rng).ok());
}

TEST(MetricTrainerTest, WmseLossDecreases) {
  Env env = MakeEnv(24);
  Rng rng(7);
  GruTrajEncoder enc(8, &env.normalizer, rng);
  std::vector<traj::Trajectory> seeds(env.corpus.begin(),
                                      env.corpus.begin() + 24);
  const auto distances =
      dist::PairwiseMatrix(seeds, dist::GetDistance(dist::Measure::kFrechet));
  MetricTrainOptions opt;
  opt.epochs = 6;
  opt.samples_per_anchor = 6;
  opt.batch_size = 8;
  const auto report = TrainMetric(&enc, seeds, distances, {}, {}, {}, opt, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& losses = report.value().epoch_losses;
  ASSERT_EQ(losses.size(), 6u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(MetricTrainerTest, ValidationSelectsBestEpoch) {
  Env env = MakeEnv(48, 33);
  Rng rng(8);
  GruTrajEncoder enc(8, &env.normalizer, rng);
  std::vector<traj::Trajectory> seeds(env.corpus.begin(),
                                      env.corpus.begin() + 24);
  const auto distances =
      dist::PairwiseMatrix(seeds, dist::GetDistance(dist::Measure::kDtw));
  std::vector<traj::Trajectory> val_q(env.corpus.begin() + 24,
                                      env.corpus.begin() + 30);
  std::vector<traj::Trajectory> val_db(env.corpus.begin() + 24,
                                       env.corpus.end());
  const auto truth = eval::ExactTopK(val_q, val_db,
                                     dist::GetDistance(dist::Measure::kDtw),
                                     50);
  MetricTrainOptions opt;
  opt.epochs = 3;
  opt.samples_per_anchor = 6;
  const auto report =
      TrainMetric(&enc, seeds, distances, val_q, val_db, truth, opt, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().best_epoch, 0);
  EXPECT_GE(report.value().best_val_hr10, 0.0);
}

}  // namespace
}  // namespace traj2hash::baselines
