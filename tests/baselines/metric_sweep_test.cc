// Parameterised sweep: every WMSE-trainable baseline must train under every
// measure and beat an untrained copy of itself on validation HR@10.

#include <gtest/gtest.h>

#include "baselines/metric_trainer.h"
#include "baselines/neutraj.h"
#include "baselines/trajgat.h"
#include "baselines/transformer.h"
#include "distance/distance.h"
#include "eval/metrics.h"
#include "traj/synthetic.h"

namespace traj2hash::baselines {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  traj::Normalizer normalizer;
  traj::BoundingBox box;
  std::vector<traj::Trajectory> seeds;
  std::vector<traj::Trajectory> val_q;
  std::vector<traj::Trajectory> val_db;
};

Env MakeEnv() {
  Env env;
  Rng rng(71);
  traj::CityConfig city = traj::CityConfig::ChengduLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, 72, rng);
  env.normalizer.Fit(env.corpus);
  env.box = traj::ComputeBoundingBox(env.corpus);
  env.seeds.assign(env.corpus.begin(), env.corpus.begin() + 24);
  env.val_q.assign(env.corpus.begin() + 24, env.corpus.begin() + 32);
  env.val_db.assign(env.corpus.begin() + 32, env.corpus.end());
  return env;
}

using Case = std::pair<const char*, dist::Measure>;

class BaselineSweepTest : public ::testing::TestWithParam<Case> {};

std::unique_ptr<NeuralEncoder> MakeEncoder(const char* name, const Env& env,
                                           traj::Grid* grid,
                                           PrQuadtree* tree, Rng& rng) {
  const std::string n = name;
  if (n == "gru") {
    return std::make_unique<GruTrajEncoder>(8, &env.normalizer, rng);
  }
  if (n == "neutraj") {
    return std::make_unique<NeuTrajEncoder>(8, &env.normalizer, grid, rng);
  }
  if (n == "transformer") {
    return std::make_unique<TransformerEncoder>(8, 1, 2, core::ReadOut::kCls,
                                                &env.normalizer, rng);
  }
  return std::make_unique<TrajGatEncoder>(8, 1, 2, tree, env.box, rng);
}

TEST_P(BaselineSweepTest, TrainingImprovesValidationHr10) {
  const auto [name, measure] = GetParam();
  Env env = MakeEnv();
  traj::Grid grid = traj::Grid::Create(env.box, 50.0).value();
  PrQuadtree tree(env.box, 10, 4);
  {
    std::vector<traj::Point> pts;
    for (const auto& t : env.corpus) {
      pts.insert(pts.end(), t.points.begin(), t.points.end());
    }
    tree.Build(pts);
  }
  Rng rng(72);
  auto encoder = MakeEncoder(name, env, &grid, &tree, rng);

  const auto distances =
      dist::PairwiseMatrix(env.seeds, dist::GetDistance(measure));
  const auto truth = eval::ExactTopK(env.val_q, env.val_db,
                                     dist::GetDistance(measure), 50);
  const double before =
      eval::EvaluateEuclidean(EmbedAll(*encoder, env.val_q),
                              EmbedAll(*encoder, env.val_db), truth)
          .hr10;
  MetricTrainOptions opt;
  opt.epochs = 4;
  opt.samples_per_anchor = 6;
  opt.batch_size = 8;
  const auto report = TrainMetric(encoder.get(), env.seeds, distances,
                                  env.val_q, env.val_db, truth, opt, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Best-epoch selection guarantees the final model is at least as good on
  // validation as any epoch; require it not to be worse than untrained.
  EXPECT_GE(report.value().best_val_hr10, before - 1e-9)
      << name << "/" << dist::MeasureName(measure);
}

INSTANTIATE_TEST_SUITE_P(
    EncodersTimesMeasures, BaselineSweepTest,
    ::testing::Values(Case{"gru", dist::Measure::kFrechet},
                      Case{"gru", dist::Measure::kHausdorff},
                      Case{"neutraj", dist::Measure::kDtw},
                      Case{"transformer", dist::Measure::kHausdorff},
                      Case{"transformer", dist::Measure::kDtw},
                      Case{"trajgat", dist::Measure::kFrechet}),
    [](const auto& info) {
      return std::string(info.param.first) + "_" +
             dist::MeasureName(info.param.second);
    });

}  // namespace
}  // namespace traj2hash::baselines
