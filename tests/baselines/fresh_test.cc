#include "baselines/fresh.h"

#include <gtest/gtest.h>

#include "traj/augment.h"
#include "traj/synthetic.h"

namespace traj2hash::baselines {
namespace {

TEST(FreshTest, CodeWidthIsRepetitionsTimesBits) {
  Rng rng(1);
  FreshLsh lsh(FreshOptions{}, rng);
  EXPECT_EQ(lsh.num_bits(), 64);  // 4 x 16, aligning with d_h = 64
  traj::Trajectory t;
  t.points = {{0, 0}, {100, 100}};
  EXPECT_EQ(lsh.CodeOf(t).num_bits, 64);
}

TEST(FreshTest, DeterministicPerInstance) {
  Rng rng(2);
  FreshLsh lsh(FreshOptions{}, rng);
  traj::Trajectory t;
  t.points = {{10, 20}, {500, 600}, {1500, 900}};
  EXPECT_EQ(lsh.CodeOf(t), lsh.CodeOf(t));
}

TEST(FreshTest, InvariantToWithinCellJitter) {
  // Points moved by far less than the resolution usually keep the same cells
  // in every repetition, so codes collide exactly.
  Rng rng(3);
  FreshOptions opt;
  opt.resolution_m = 1000.0;
  FreshLsh lsh(opt, rng);
  traj::Trajectory t;
  t.points = {{200, 200}, {2200, 200}, {4200, 2200}};
  Rng jitter(4);
  int identical = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const traj::Trajectory moved = traj::Distort(t, 5.0, jitter);
    if (lsh.CodeOf(moved) == lsh.CodeOf(t)) ++identical;
  }
  EXPECT_GE(identical, trials * 3 / 4);
}

TEST(FreshTest, CloseCurvesCollideMoreThanFarCurves) {
  Rng rng(5);
  FreshLsh lsh(FreshOptions{}, rng);
  Rng data_rng(6);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 16;
  const auto corpus = GenerateTrips(city, 40, data_rng);
  Rng aug(7);
  double near_total = 0.0, far_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const traj::Trajectory& t = corpus[i];
    const traj::Trajectory near = traj::Distort(t, 30.0, aug);
    const traj::Trajectory& far = corpus[i + 20];
    near_total += search::HammingDistance(lsh.CodeOf(t), lsh.CodeOf(near));
    far_total += search::HammingDistance(lsh.CodeOf(t), lsh.CodeOf(far));
  }
  EXPECT_LT(near_total, far_total);
}

TEST(FreshTest, ConsecutiveDuplicateCellsIgnored) {
  // Oversampling within a cell must not change the code: Fresh dedups
  // consecutive grid cells before hashing.
  Rng rng(8);
  FreshLsh lsh(FreshOptions{}, rng);
  traj::Trajectory sparse, dense;
  sparse.points = {{100, 100}, {3100, 100}, {6100, 3100}};
  for (const traj::Point& p : sparse.points) {
    dense.points.push_back(p);
    dense.points.push_back({p.x + 1.0, p.y + 1.0});
    dense.points.push_back({p.x + 2.0, p.y});
  }
  EXPECT_EQ(lsh.CodeOf(sparse), lsh.CodeOf(dense));
}

TEST(FreshTest, DifferentSeedsGiveDifferentHashFamilies) {
  Rng rng1(10), rng2(11);
  FreshLsh a(FreshOptions{}, rng1);
  FreshLsh b(FreshOptions{}, rng2);
  traj::Trajectory t;
  t.points = {{10, 20}, {500, 600}, {1500, 900}};
  EXPECT_NE(a.CodeOf(t), b.CodeOf(t));
}

}  // namespace
}  // namespace traj2hash::baselines
