#include "traj/trajectory.h"

#include <cmath>

#include <gtest/gtest.h>

namespace traj2hash::traj {
namespace {

Trajectory MakeTraj(std::vector<Point> pts, int64_t id = 0) {
  Trajectory t;
  t.id = id;
  t.points = std::move(pts);
  return t;
}

TEST(PointTest, Distance345) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(TrajectoryTest, ReversedReversesOrderKeepsId) {
  const Trajectory t = MakeTraj({{0, 0}, {1, 0}, {2, 1}}, 99);
  const Trajectory r = Reversed(t);
  EXPECT_EQ(r.id, 99);
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r.points[0], (Point{2, 1}));
  EXPECT_EQ(r.points[2], (Point{0, 0}));
}

TEST(TrajectoryTest, DoubleReverseIsIdentity) {
  const Trajectory t = MakeTraj({{0, 0}, {5, 2}, {1, 7}, {3, 3}});
  const Trajectory rr = Reversed(Reversed(t));
  EXPECT_EQ(rr.points, t.points);
}

TEST(TrajectoryTest, PathLengthSumsSegments) {
  const Trajectory t = MakeTraj({{0, 0}, {3, 4}, {3, 10}});
  EXPECT_DOUBLE_EQ(PathLength(t), 5.0 + 6.0);
  EXPECT_DOUBLE_EQ(PathLength(MakeTraj({{1, 1}})), 0.0);
}

TEST(BoundingBoxTest, CoversAllPoints) {
  const std::vector<Trajectory> ts = {MakeTraj({{0, 5}, {10, 2}}),
                                      MakeTraj({{-3, 8}})};
  const BoundingBox box = ComputeBoundingBox(ts);
  EXPECT_DOUBLE_EQ(box.min_x, -3);
  EXPECT_DOUBLE_EQ(box.max_x, 10);
  EXPECT_DOUBLE_EQ(box.min_y, 2);
  EXPECT_DOUBLE_EQ(box.max_y, 8);
  EXPECT_TRUE(box.Contains({0, 5}));
  EXPECT_FALSE(box.Contains({11, 5}));
}

TEST(BoundingBoxTest, EmptyInputGivesZeroBox) {
  const BoundingBox box = ComputeBoundingBox({});
  EXPECT_DOUBLE_EQ(box.Width(), 0.0);
  EXPECT_DOUBLE_EQ(box.Height(), 0.0);
}

}  // namespace
}  // namespace traj2hash::traj
