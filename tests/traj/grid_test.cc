#include "traj/grid.h"

#include <gtest/gtest.h>

namespace traj2hash::traj {
namespace {

BoundingBox Box(double w, double h) { return BoundingBox{0, 0, w, h}; }

TEST(GridTest, CreateRejectsBadArguments) {
  EXPECT_FALSE(Grid::Create(Box(100, 100), 0.0).ok());
  EXPECT_FALSE(Grid::Create(Box(100, 100), -5.0).ok());
  EXPECT_FALSE(Grid::Create(BoundingBox{10, 0, 0, 10}, 5.0).ok());
}

TEST(GridTest, DimensionsCoverBoxWithPadding) {
  const Grid g = Grid::Create(Box(100, 50), 10.0).value();
  EXPECT_EQ(g.num_x(), 12);  // 10 interior + 2 padding
  EXPECT_EQ(g.num_y(), 7);
  EXPECT_DOUBLE_EQ(g.cell_size(), 10.0);
}

TEST(GridTest, CellOfMapsBoundaryPointsInside) {
  const Grid g = Grid::Create(Box(100, 100), 10.0).value();
  const Cell origin = g.CellOf({0, 0});
  EXPECT_EQ(origin, (Cell{1, 1}));  // one padding cell before the box
  const Cell corner = g.CellOf({100, 100});
  EXPECT_LT(corner.x, g.num_x());
  EXPECT_LT(corner.y, g.num_y());
}

TEST(GridTest, OutsidePointsClampToBorder) {
  const Grid g = Grid::Create(Box(100, 100), 10.0).value();
  const Cell c = g.CellOf({-1000, 1000});
  EXPECT_EQ(c.x, 0);
  EXPECT_EQ(c.y, g.num_y() - 1);
}

TEST(GridTest, CellCenterRoundTrips) {
  const Grid g = Grid::Create(Box(100, 100), 10.0).value();
  const Cell c = g.CellOf({34, 67});
  const Point center = g.CellCenter(c);
  EXPECT_EQ(g.CellOf(center), c);
  // Centre is within half a cell of the original point.
  EXPECT_LE(std::abs(center.x - 34), 5.0 + 1e-9);
  EXPECT_LE(std::abs(center.y - 67), 5.0 + 1e-9);
}

TEST(GridTest, MapPreservesLengthWithoutDedup) {
  const Grid g = Grid::Create(Box(100, 100), 10.0).value();
  Trajectory t;
  t.points = {{1, 1}, {2, 2}, {50, 50}};
  const GridTrajectory gt = g.Map(t);
  EXPECT_EQ(gt.size(), 3);
  EXPECT_EQ(gt.cells[0], gt.cells[1]);  // both in the same cell
}

TEST(GridTest, MapDedupsConsecutiveCells) {
  const Grid g = Grid::Create(Box(100, 100), 10.0).value();
  Trajectory t;
  t.points = {{1, 1}, {2, 2}, {50, 50}, {51, 51}, {1, 1}};
  const GridTrajectory gt = g.Map(t, /*dedup_consecutive=*/true);
  EXPECT_EQ(gt.size(), 3);  // AABBA -> ABA
}

TEST(GridTest, FlatIdUniqueAndInRange) {
  const Grid g = Grid::Create(Box(40, 40), 10.0).value();
  std::vector<bool> seen(static_cast<size_t>(g.num_x()) * g.num_y(), false);
  for (int y = 0; y < g.num_y(); ++y) {
    for (int x = 0; x < g.num_x(); ++x) {
      const int64_t id = g.FlatId(Cell{x, y});
      ASSERT_GE(id, 0);
      ASSERT_LT(id, static_cast<int64_t>(seen.size()));
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(GridTest, SequenceKeyDistinguishesOrderAndCells) {
  const Grid g = Grid::Create(Box(100, 100), 10.0).value();
  Trajectory a, b;
  a.points = {{5, 5}, {55, 55}};
  b.points = {{55, 55}, {5, 5}};
  const std::string ka = g.SequenceKey(g.Map(a, true));
  const std::string kb = g.SequenceKey(g.Map(b, true));
  EXPECT_NE(ka, kb);
  Trajectory a2;
  a2.points = {{6, 6}, {56, 56}};  // same cells as a
  EXPECT_EQ(ka, g.SequenceKey(g.Map(a2, true)));
}

}  // namespace
}  // namespace traj2hash::traj
