#include "traj/synthetic.h"

#include <gtest/gtest.h>

#include "traj/trajectory.h"

namespace traj2hash::traj {
namespace {

class SyntheticCityTest : public ::testing::TestWithParam<CityConfig> {};

TEST_P(SyntheticCityTest, GeneratesRequestedCountMeetingFilters) {
  Rng rng(5);
  const CityConfig cfg = GetParam();
  const std::vector<Trajectory> ts = GenerateTrips(cfg, 50, rng);
  ASSERT_EQ(ts.size(), 50u);
  for (const Trajectory& t : ts) {
    EXPECT_GE(t.size(), cfg.min_points);
    EXPECT_LE(t.size(), cfg.max_points);
  }
}

TEST_P(SyntheticCityTest, PointsStayNearTheCityExtent) {
  Rng rng(6);
  const CityConfig cfg = GetParam();
  const std::vector<Trajectory> ts = GenerateTrips(cfg, 30, rng);
  const double slack = 5.0 * cfg.gps_noise_m;
  for (const Trajectory& t : ts) {
    for (const Point& p : t.points) {
      EXPECT_GE(p.x, -slack);
      EXPECT_LE(p.x, cfg.width_m + slack);
      EXPECT_GE(p.y, -slack);
      EXPECT_LE(p.y, cfg.height_m + slack);
    }
  }
}

TEST_P(SyntheticCityTest, ConsecutivePointsAreStepScale) {
  Rng rng(7);
  const CityConfig cfg = GetParam();
  const std::vector<Trajectory> ts = GenerateTrips(cfg, 20, rng);
  for (const Trajectory& t : ts) {
    for (int i = 1; i < t.size(); ++i) {
      // Step length plus generous noise bound.
      EXPECT_LE(Distance(t.points[i - 1], t.points[i]),
                1.6 * cfg.step_m + 8.0 * cfg.gps_noise_m);
    }
  }
}

TEST_P(SyntheticCityTest, DeterministicUnderSeed) {
  const CityConfig cfg = GetParam();
  Rng rng1(42), rng2(42);
  const auto a = GenerateTrips(cfg, 5, rng1);
  const auto b = GenerateTrips(cfg, 5, rng2);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].points, b[i].points);
  }
}

INSTANTIATE_TEST_SUITE_P(Cities, SyntheticCityTest,
                         ::testing::Values(CityConfig::PortoLike(),
                                           CityConfig::ChengduLike()),
                         [](const auto& info) { return info.param.name; });

TEST(DownsampleTest, KeepsEndpointsAndBound) {
  Trajectory t;
  for (int i = 0; i < 100; ++i) t.points.push_back(Point{double(i), 0.0});
  const Trajectory d = Downsample(t, 10);
  ASSERT_EQ(d.size(), 10);
  EXPECT_EQ(d.points.front(), t.points.front());
  EXPECT_EQ(d.points.back(), t.points.back());
}

TEST(DownsampleTest, ShortTrajectoryUnchanged) {
  Trajectory t;
  t.points = {{0, 0}, {1, 1}, {2, 2}};
  const Trajectory d = Downsample(t, 10);
  EXPECT_EQ(d.points, t.points);
}

TEST(DownsampleTest, PreservesOrder) {
  Trajectory t;
  for (int i = 0; i < 57; ++i) t.points.push_back(Point{double(i), 0.0});
  const Trajectory d = Downsample(t, 7);
  for (int i = 1; i < d.size(); ++i) {
    EXPECT_LT(d.points[i - 1].x, d.points[i].x);
  }
}

}  // namespace
}  // namespace traj2hash::traj
