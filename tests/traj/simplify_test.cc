#include "traj/simplify.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "traj/synthetic.h"

namespace traj2hash::traj {
namespace {

Trajectory MakeTraj(std::vector<Point> pts) {
  Trajectory t;
  t.points = std::move(pts);
  return t;
}

TEST(SegmentDistanceTest, PerpendicularAndClampedCases) {
  const Point a{0, 0}, b{10, 0};
  EXPECT_DOUBLE_EQ(SegmentDistance({5, 3}, a, b), 3.0);   // interior
  EXPECT_DOUBLE_EQ(SegmentDistance({-4, 3}, a, b), 5.0);  // clamps to a
  EXPECT_DOUBLE_EQ(SegmentDistance({13, 4}, a, b), 5.0);  // clamps to b
  EXPECT_DOUBLE_EQ(SegmentDistance({3, 4}, a, a), 5.0);   // degenerate
}

TEST(DouglasPeuckerTest, CollinearPointsCollapseToEndpoints) {
  Trajectory t;
  for (int i = 0; i <= 20; ++i) t.points.push_back({double(i), 0.0});
  const Trajectory s = DouglasPeucker(t, 0.5);
  ASSERT_EQ(s.size(), 2);
  EXPECT_EQ(s.points.front(), t.points.front());
  EXPECT_EQ(s.points.back(), t.points.back());
}

TEST(DouglasPeuckerTest, KeepsSalientCorner) {
  const Trajectory t =
      MakeTraj({{0, 0}, {5, 0}, {10, 10}, {15, 20}, {20, 20}});
  const Trajectory s = DouglasPeucker(t, 1.0);
  // (5,0) deviates strongly from the (0,0)-(20,20) chord and must survive;
  // (10,10) lies exactly on the chord.
  bool has_corner = false;
  for (const Point& p : s.points) {
    if (p == Point{5, 0}) has_corner = true;
  }
  EXPECT_TRUE(has_corner);
}

TEST(DouglasPeuckerTest, ZeroEpsilonKeepsAllNonCollinear) {
  Rng rng(1);
  Trajectory t;
  for (int i = 0; i < 30; ++i) {
    t.points.push_back({double(i), rng.Uniform(-5.0, 5.0)});
  }
  EXPECT_EQ(DouglasPeucker(t, 0.0).size(), t.size());
}

TEST(DouglasPeuckerTest, ErrorBoundedByEpsilon) {
  Rng rng(2);
  CityConfig city = CityConfig::PortoLike();
  city.max_points = 40;
  const auto trips = GenerateTrips(city, 10, rng);
  for (const double eps : {10.0, 50.0, 200.0}) {
    for (const Trajectory& t : trips) {
      const Trajectory s = DouglasPeucker(t, eps);
      EXPECT_LE(SimplificationError(t, s), eps + 1e-9);
      EXPECT_EQ(s.points.front(), t.points.front());
      EXPECT_EQ(s.points.back(), t.points.back());
    }
  }
}

TEST(DouglasPeuckerTest, MonotoneInEpsilon) {
  Rng rng(3);
  CityConfig city = CityConfig::PortoLike();
  city.max_points = 40;
  const auto trips = GenerateTrips(city, 5, rng);
  for (const Trajectory& t : trips) {
    int prev = t.size();
    for (const double eps : {5.0, 20.0, 100.0, 500.0}) {
      const int n = DouglasPeucker(t, eps).size();
      EXPECT_LE(n, prev);
      prev = n;
    }
    EXPECT_GE(prev, 2);
  }
}

TEST(DouglasPeuckerTest, TinyTrajectoriesUnchanged) {
  EXPECT_EQ(DouglasPeucker(MakeTraj({{1, 1}}), 10.0).size(), 1);
  EXPECT_EQ(DouglasPeucker(MakeTraj({{1, 1}, {2, 2}}), 10.0).size(), 2);
}

}  // namespace
}  // namespace traj2hash::traj
