#include "traj/io.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace traj2hash::traj {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(IoTest, SaveLoadRoundTrip) {
  std::vector<Trajectory> ts(2);
  ts[0].id = 7;
  ts[0].points = {{1.25, 2.5}, {3.75, -4.0}};
  ts[1].id = 8;
  ts[1].points = {{100.01, 200.02}};
  const std::string path = TempPath("t2h_io_roundtrip.csv");
  ASSERT_TRUE(SaveCsv(ts, path).ok());
  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].id, 7);
  EXPECT_EQ(loaded.value()[1].id, 8);
  EXPECT_NEAR(loaded.value()[0].points[1].y, -4.0, 1e-6);
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileIsIoError) {
  const auto r = LoadCsv("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, LoadSkipsCommentsAndBlanks) {
  const std::string path = TempPath("t2h_io_comments.csv");
  {
    std::ofstream out(path);
    out << "# header\n\n1,0.0,0.0,10.0,10.0\n";
  }
  const auto r = LoadCsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].points.size(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsOddCoordinateCount) {
  const std::string path = TempPath("t2h_io_odd.csv");
  {
    std::ofstream out(path);
    out << "1,0.0,0.0,10.0\n";
  }
  const auto r = LoadCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsNonNumericId) {
  const std::string path = TempPath("t2h_io_badid.csv");
  {
    std::ofstream out(path);
    out << "abc,0.0,0.0\n";
  }
  const auto r = LoadCsv(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsTrailingGarbageInFields) {
  const std::string path = TempPath("t2h_io_garbage.csv");
  {
    std::ofstream out(path);
    out << "1,0.0,0.0\n";
    out << "2,1.5x,2.0\n";  // "1.5x" parses as 1.5 under plain strtod
  }
  const auto r = LoadCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("line 2"), std::string::npos)
      << r.status().ToString();

  {
    std::ofstream out(path);
    out << "3x,0.0,0.0\n";  // partially-numeric id
  }
  const auto bad_id = LoadCsv(path);
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsNonFiniteCoordinates) {
  const std::string path = TempPath("t2h_io_nonfinite.csv");
  for (const std::string bad : {"nan", "inf", "-inf", "NAN"}) {
    {
      std::ofstream out(path);
      out << "# ok line first\n1,0.0,0.0\n2,5.0," << bad << "\n";
    }
    const auto r = LoadCsv(path);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(r.status().ToString().find("line 3"), std::string::npos)
        << r.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadCountsSkippedLines) {
  const std::string path = TempPath("t2h_io_skipped.csv");
  {
    std::ofstream out(path);
    out << "# header\n\n1,0.0,0.0\n# trailing comment\n\n2,1.0,1.0\n";
  }
  int skipped = -1;
  const auto r = LoadCsv(path, &skipped);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(skipped, 4);  // two comments + two blanks
  std::remove(path.c_str());
}

TEST(ProjectionTest, AnchorMapsToOrigin) {
  const Point p = ProjectLatLon(41.15, -8.61, 41.15, -8.61);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(ProjectionTest, OneDegreeLatitudeIs111Km) {
  const Point p = ProjectLatLon(42.15, -8.61, 41.15, -8.61);
  EXPECT_NEAR(p.y, 111194.9, 50.0);
  EXPECT_NEAR(p.x, 0.0, 1e-6);
}

TEST(ProjectionTest, LongitudeScalesWithCosLatitude) {
  const Point equator = ProjectLatLon(0.0, 1.0, 0.0, 0.0);
  const Point porto = ProjectLatLon(41.15, -7.61, 41.15, -8.61);
  EXPECT_LT(porto.x, equator.x);
  EXPECT_NEAR(porto.x / equator.x, std::cos(41.15 * 3.14159265 / 180.0),
              1e-3);
}

}  // namespace
}  // namespace traj2hash::traj
