// Edge-case coverage for the grid partition: degenerate boxes, negative
// coordinates, very large cells, and key stability.

#include <gtest/gtest.h>

#include "traj/grid.h"

namespace traj2hash::traj {
namespace {

TEST(GridEdgeTest, SinglePointBoxStillHasCells) {
  // A corpus of one stationary point yields a zero-area box; padding must
  // still produce a usable grid.
  const BoundingBox box{10.0, 20.0, 10.0, 20.0};
  const auto grid = Grid::Create(box, 50.0);
  ASSERT_TRUE(grid.ok());
  EXPECT_GE(grid.value().num_x(), 2);
  EXPECT_GE(grid.value().num_y(), 2);
  const Cell c = grid.value().CellOf({10.0, 20.0});
  EXPECT_GE(c.x, 0);
  EXPECT_LT(c.x, grid.value().num_x());
}

TEST(GridEdgeTest, NegativeCoordinatesSupported) {
  const BoundingBox box{-500.0, -400.0, -100.0, -50.0};
  const Grid grid = Grid::Create(box, 25.0).value();
  const Cell a = grid.CellOf({-500.0, -400.0});
  const Cell b = grid.CellOf({-100.0, -50.0});
  EXPECT_LT(a.x, b.x);
  EXPECT_LT(a.y, b.y);
  EXPECT_NE(grid.FlatId(a), grid.FlatId(b));
}

TEST(GridEdgeTest, CellLargerThanBoxMapsEverythingTogether) {
  const BoundingBox box{0.0, 0.0, 10.0, 10.0};
  const Grid grid = Grid::Create(box, 1000.0).value();
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), grid.CellOf({10.0, 10.0}));
}

TEST(GridEdgeTest, AdjacentPointsStraddlingBoundaryDiffer) {
  const Grid grid = Grid::Create({0, 0, 100, 100}, 10.0).value();
  // Points just below/above a cell boundary must land in adjacent cells.
  const Cell below = grid.CellOf({9.999, 5.0});
  const Cell above = grid.CellOf({10.001, 5.0});
  EXPECT_EQ(above.x, below.x + 1);
  EXPECT_EQ(above.y, below.y);
}

TEST(GridEdgeTest, SequenceKeyEmptyForEmptyTrajectoryMapping) {
  const Grid grid = Grid::Create({0, 0, 100, 100}, 10.0).value();
  GridTrajectory g;  // empty
  EXPECT_TRUE(grid.SequenceKey(g).empty());
}

TEST(GridEdgeTest, KeysAreUnambiguousAcrossCellIdConcatenation) {
  // Keys are comma-terminated per cell, so (1,12) and (11,2)-style id
  // concatenations cannot collide.
  const Grid grid = Grid::Create({0, 0, 1000, 1000}, 10.0).value();
  GridTrajectory a, b;
  a.cells = {Cell{1, 0}, Cell{12, 0}};
  b.cells = {Cell{11, 0}, Cell{2, 0}};
  EXPECT_NE(grid.SequenceKey(a), grid.SequenceKey(b));
}

}  // namespace
}  // namespace traj2hash::traj
