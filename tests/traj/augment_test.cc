#include "traj/augment.h"

#include <gtest/gtest.h>

namespace traj2hash::traj {
namespace {

Trajectory Line(int n) {
  Trajectory t;
  for (int i = 0; i < n; ++i) t.points.push_back(Point{double(i), 0.0});
  return t;
}

TEST(DropPointsTest, KeepsEndpointsAlways) {
  Rng rng(1);
  const Trajectory t = Line(30);
  for (int trial = 0; trial < 20; ++trial) {
    const Trajectory d = DropPoints(t, 0.9, rng);
    ASSERT_GE(d.size(), 2);
    EXPECT_EQ(d.points.front(), t.points.front());
    EXPECT_EQ(d.points.back(), t.points.back());
  }
}

TEST(DropPointsTest, RateZeroIsIdentity) {
  Rng rng(2);
  const Trajectory t = Line(15);
  EXPECT_EQ(DropPoints(t, 0.0, rng).points, t.points);
}

TEST(DropPointsTest, RateOneKeepsOnlyEndpoints) {
  Rng rng(3);
  const Trajectory t = Line(15);
  EXPECT_EQ(DropPoints(t, 1.0, rng).size(), 2);
}

TEST(DropPointsTest, InteriorSubsetInOrder) {
  Rng rng(4);
  const Trajectory t = Line(40);
  const Trajectory d = DropPoints(t, 0.5, rng);
  for (int i = 1; i < d.size(); ++i) {
    EXPECT_LT(d.points[i - 1].x, d.points[i].x);
  }
}

TEST(DistortTest, PreservesCountAndStaysNearOriginal) {
  Rng rng(5);
  const Trajectory t = Line(25);
  const Trajectory d = Distort(t, 2.0, rng);
  ASSERT_EQ(d.size(), t.size());
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_LT(Distance(t.points[i], d.points[i]), 20.0);  // 10 sigma
  }
}

TEST(DistortTest, ZeroSigmaIsIdentity) {
  Rng rng(6);
  const Trajectory t = Line(5);
  EXPECT_EQ(Distort(t, 0.0, rng).points, t.points);
}

}  // namespace
}  // namespace traj2hash::traj
