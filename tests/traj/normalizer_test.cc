#include "traj/normalizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace traj2hash::traj {
namespace {

TEST(NormalizerTest, IdentityBeforeFit) {
  const Normalizer n;
  const Point p = n.Apply(Point{3.0, -4.0});
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, -4.0);
}

TEST(NormalizerTest, FittedOutputHasZeroMeanUnitVariance) {
  std::vector<Trajectory> ts(1);
  for (int i = 0; i < 100; ++i) {
    ts[0].points.push_back(Point{100.0 + i * 3.0, -50.0 + i * i * 0.1});
  }
  Normalizer n;
  n.Fit(ts);
  double mean_x = 0, mean_y = 0, var_x = 0, var_y = 0;
  std::vector<Point> mapped = n.Apply(ts[0]);
  for (const Point& p : mapped) {
    mean_x += p.x;
    mean_y += p.y;
  }
  mean_x /= mapped.size();
  mean_y /= mapped.size();
  for (const Point& p : mapped) {
    var_x += (p.x - mean_x) * (p.x - mean_x);
    var_y += (p.y - mean_y) * (p.y - mean_y);
  }
  var_x /= mapped.size();
  var_y /= mapped.size();
  EXPECT_NEAR(mean_x, 0.0, 1e-9);
  EXPECT_NEAR(mean_y, 0.0, 1e-9);
  EXPECT_NEAR(var_x, 1.0, 1e-9);
  EXPECT_NEAR(var_y, 1.0, 1e-9);
}

TEST(NormalizerTest, DegenerateAxisKeepsUnitStd) {
  std::vector<Trajectory> ts(1);
  ts[0].points = {{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  Normalizer n;
  n.Fit(ts);
  EXPECT_DOUBLE_EQ(n.std_x(), 1.0);
  const Point p = n.Apply(Point{5.0, 2.0});
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(NormalizerTest, EmptyFitIsNoOp) {
  Normalizer n;
  n.Fit({});
  const Point p = n.Apply(Point{7.0, 8.0});
  EXPECT_DOUBLE_EQ(p.x, 7.0);
  EXPECT_DOUBLE_EQ(p.y, 8.0);
}

TEST(NormalizerTest, AppliesAcrossMultipleTrajectories) {
  std::vector<Trajectory> ts(2);
  ts[0].points = {{0.0, 0.0}};
  ts[1].points = {{10.0, 20.0}};
  Normalizer n;
  n.Fit(ts);
  EXPECT_DOUBLE_EQ(n.mean_x(), 5.0);
  EXPECT_DOUBLE_EQ(n.mean_y(), 10.0);
}

}  // namespace
}  // namespace traj2hash::traj
