// Unit tests for the per-dimension affine int8 quantization (DESIGN.md §17):
// calibration (one-shot and streaming), the round-trip error bound
// (≤ step/2 per dimension inside the calibration range), zero-range
// widening, saturating out-of-range values, NaN/inf rejection at quantize
// time, and the QuantizedMatrix layout contract (32-byte-aligned rows,
// byte stride padded to 32, zero-filled padding).
#include "quant/quantized_matrix.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace traj2hash::quant {
namespace {

std::vector<std::vector<float>> RandomRows(int n, int dim, Rng& rng,
                                           double lo = -5.0,
                                           double hi = 5.0) {
  std::vector<std::vector<float>> rows(n, std::vector<float>(dim));
  for (auto& row : rows) {
    for (float& x : row) x = static_cast<float>(rng.Uniform(lo, hi));
  }
  return rows;
}

TEST(QuantizationParamsTest, RoundTripErrorBoundedByHalfStep) {
  Rng rng(11);
  const int dim = 19;
  const auto rows = RandomRows(60, dim, rng);
  const auto params = QuantizationParams::Compute(rows, dim);
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params.value().dim(), dim);
  std::vector<int8_t> q(dim);
  std::vector<float> back(dim);
  for (const auto& row : rows) {
    ASSERT_TRUE(params.value().QuantizeRow(row.data(), q.data()).ok());
    params.value().DequantizeRow(q.data(), back.data());
    for (int j = 0; j < dim; ++j) {
      // Half a step, plus a little float-arithmetic headroom: the bound is
      // about the lattice, not about exact float rounding.
      const float step = params.value().scale[j];
      EXPECT_LE(std::abs(back[j] - row[j]), 0.5f * step + 1e-4f * step)
          << "dim " << j;
    }
  }
}

TEST(QuantizationParamsTest, ConstantDimensionIsWidenedNotDegenerate) {
  // A zero-range dimension would make the step 0 (division by zero at
  // quantize time); the contract widens it to [c − ½, c + ½] instead.
  const int dim = 3;
  std::vector<std::vector<float>> rows(8, {4.25f, -1.0f, 0.0f});
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i][1] = static_cast<float>(i);  // only dim 1 varies
  }
  const auto params = QuantizationParams::Compute(rows, dim);
  ASSERT_TRUE(params.ok());
  EXPECT_NEAR(params.value().scale[0], 1.0f / 255.0f, 1e-7f);
  EXPECT_NEAR(params.value().scale[2], 1.0f / 255.0f, 1e-7f);
  EXPECT_GT(params.value().scale[1], params.value().scale[0]);

  std::vector<int8_t> q(dim);
  std::vector<float> back(dim);
  ASSERT_TRUE(params.value().QuantizeRow(rows[3].data(), q.data()).ok());
  params.value().DequantizeRow(q.data(), back.data());
  EXPECT_NEAR(back[0], 4.25f, 1.0f / 510.0f + 1e-5f);
  EXPECT_NEAR(back[2], 0.0f, 1.0f / 510.0f + 1e-5f);
}

TEST(QuantizationParamsTest, OutOfRangeValuesSaturateAtTheRangeEdge) {
  const int dim = 2;
  const std::vector<std::vector<float>> rows = {{-1.0f, -2.0f},
                                                {1.0f, 2.0f}};
  const auto params = QuantizationParams::Compute(rows, dim);
  ASSERT_TRUE(params.ok());

  const std::vector<float> outlier = {100.0f, -100.0f};
  std::vector<int8_t> q(dim);
  std::vector<float> back(dim);
  ASSERT_TRUE(params.value().QuantizeRow(outlier.data(), q.data()).ok());
  EXPECT_EQ(q[0], 127);   // saturated high
  EXPECT_EQ(q[1], -128);  // saturated low
  params.value().DequantizeRow(q.data(), back.data());
  // The float zero-point maps the calibration range exactly onto
  // [−128, 127], so saturation lands on the range edge (up to float
  // rounding), never outside it.
  EXPECT_NEAR(back[0], 1.0f, 1e-4f);
  EXPECT_NEAR(back[1], -2.0f, 1e-4f);
}

TEST(QuantizationParamsTest, NonFiniteValuesAreRejected) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();

  // Calibration with a non-finite row.
  auto bad = QuantizationParams::Compute({{1.0f, nan}}, 2);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Quantizing a non-finite row under good params.
  const auto params =
      QuantizationParams::Compute({{-1.0f, -1.0f}, {1.0f, 1.0f}}, 2);
  ASSERT_TRUE(params.ok());
  std::vector<int8_t> q(2);
  for (const float poison : {nan, inf, -inf}) {
    const std::vector<float> row = {0.0f, poison};
    const Status s = params.value().QuantizeRow(row.data(), q.data());
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }

  // Streaming calibration rejects too, without partially applying the row.
  ParamsBuilder builder(2);
  ASSERT_TRUE(builder.Add(std::vector<float>{0.0f, 0.0f}.data()).ok());
  const std::vector<float> poison_row = {nan, 7.0f};
  EXPECT_EQ(builder.Add(poison_row.data()).code(),
            StatusCode::kInvalidArgument);
  const auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  // The rejected row's max (7.0) must not have leaked into the range.
  EXPECT_NEAR(built.value().scale[1], 1.0f / 255.0f, 1e-7f);
}

TEST(ParamsBuilderTest, MatchesOneShotCompute) {
  Rng rng(17);
  const int dim = 7;
  const auto rows = RandomRows(40, dim, rng);
  const auto one_shot = QuantizationParams::Compute(rows, dim);
  ASSERT_TRUE(one_shot.ok());

  ParamsBuilder builder(dim);
  for (const auto& row : rows) ASSERT_TRUE(builder.Add(row.data()).ok());
  EXPECT_EQ(builder.rows_seen(), 40);
  const auto streamed = builder.Build();
  ASSERT_TRUE(streamed.ok());
  for (int j = 0; j < dim; ++j) {
    EXPECT_EQ(streamed.value().scale[j], one_shot.value().scale[j]) << j;
    EXPECT_EQ(streamed.value().zero_point[j], one_shot.value().zero_point[j])
        << j;
    EXPECT_EQ(streamed.value().scale_sq[j], one_shot.value().scale_sq[j])
        << j;
  }
}

TEST(ParamsBuilderTest, BuildWithoutRowsFails) {
  ParamsBuilder builder(4);
  const auto built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QuantizedMatrixTest, LayoutContractAndRoundTrip) {
  const int cols = 37;  // not a multiple of 32: padding in play
  QuantizedMatrix m(cols);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), cols);
  EXPECT_EQ(m.stride() % 32, 0);
  EXPECT_GE(m.stride(), cols);

  Rng rng(5);
  std::vector<std::vector<int8_t>> rows;
  for (int i = 0; i < 9; ++i) {
    std::vector<int8_t> row(cols);
    for (int8_t& v : row) {
      v = static_cast<int8_t>(rng.UniformInt(-128, 127));
    }
    EXPECT_EQ(m.Append(row.data()), i);
    rows.push_back(std::move(row));
  }
  ASSERT_EQ(m.rows(), 9);
  EXPECT_EQ(m.resident_bytes(), static_cast<size_t>(9) * m.stride());

  for (int i = 0; i < 9; ++i) {
    // Aligned row starts, exact payload, zero-filled padding.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.row(i)) % 32, 0u) << i;
    EXPECT_EQ(m.RowAt(i), rows[i]) << i;
    for (int j = cols; j < m.stride(); ++j) {
      EXPECT_EQ(m.row(i)[j], 0) << "row " << i << " pad " << j;
    }
  }

  // Overwrite keeps the same contract.
  std::vector<int8_t> replacement(cols, -3);
  m.OverwriteRow(4, replacement.data());
  EXPECT_EQ(m.RowAt(4), replacement);
  EXPECT_EQ(m.RowAt(3), rows[3]);
  EXPECT_EQ(m.RowAt(5), rows[5]);
}

}  // namespace
}  // namespace traj2hash::quant
