// Two-stage re-ranker tests (DESIGN.md §17): the headline contract is
// bit-identity — RerankTopK must return exactly what search::TopKEuclidean
// returns over a FlatMatrix holding the dequantized lattice rows of the
// same candidates, distances included, with zero band violations. Plus the
// fallback paths (non-finite query, k ≥ n) and the counter accounting.
#include "quant/rerank.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/flat_storage.h"
#include "search/knn.h"

namespace traj2hash::quant {
namespace {

struct Store {
  QuantizationParams params;
  QuantizedMatrix m{1};
};

/// Random rows quantized into one store (params calibrated on those rows).
Store MakeStore(int n, int dim, Rng& rng, double lo = -4.0, double hi = 4.0) {
  std::vector<std::vector<float>> rows(n, std::vector<float>(dim));
  for (auto& row : rows) {
    for (float& x : row) x = static_cast<float>(rng.Uniform(lo, hi));
  }
  Store store;
  store.params = QuantizationParams::Compute(rows, dim).value();
  store.m = QuantizedMatrix(dim);
  std::vector<int8_t> q(dim);
  for (const auto& row : rows) {
    EXPECT_TRUE(store.params.QuantizeRow(row.data(), q.data()).ok());
    store.m.Append(q.data());
  }
  return store;
}

/// The float path the re-ranker must be bit-identical to: exact top-k over
/// the DEQUANTIZED candidate rows, indices mapped back to rows of `m`.
std::vector<search::Neighbor> FloatOracle(const QuantizedMatrix& m,
                                          const QuantizationParams& params,
                                          const std::vector<float>& query,
                                          int k,
                                          const std::vector<int>& candidates) {
  search::FlatMatrix deq(params.dim());
  std::vector<float> row(params.dim());
  for (const int c : candidates) {
    params.DequantizeRow(m.row(c), row.data());
    deq.Append(row);
  }
  std::vector<search::Neighbor> top = search::TopKEuclidean(deq, query, k);
  for (search::Neighbor& nb : top) nb.index = candidates[nb.index];
  return top;
}

void ExpectBitIdentical(const std::vector<search::Neighbor>& got,
                        const std::vector<search::Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;
  }
}

std::vector<int> AllRows(int n) {
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  return all;
}

TEST(RerankTopKTest, BitIdenticalToFloatPathOverAllRows) {
  Rng rng(71);
  for (const int dim : {1, 5, 8, 33, 64}) {
    for (const int n : {1, 7, 40, 150}) {
      const Store store = MakeStore(n, dim, rng);
      for (const int k : {1, 3, 10}) {
        std::vector<float> query(dim);
        for (float& x : query) x = static_cast<float>(rng.Uniform(-4.5, 4.5));
        RerankCounters counters;
        const auto got = RerankTopK(store.m, store.params, query, k,
                                    /*candidates=*/nullptr,
                                    /*num_candidates=*/0, &counters);
        ExpectBitIdentical(
            got, FloatOracle(store.m, store.params, query, k, AllRows(n)));
        EXPECT_EQ(SnapshotCounters(counters).band_violations, 0u)
            << "dim=" << dim << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(RerankTopKTest, CandidateSubsetIsRespectedAndMappedBack) {
  Rng rng(72);
  const int n = 90;
  const int dim = 16;
  const Store store = MakeStore(n, dim, rng);
  // An ascending candidate subset (the layer above gathers candidates in
  // ascending row order so row ties equal id ties).
  std::vector<int> candidates;
  for (int i = 0; i < n; i += 3) candidates.push_back(i);
  std::vector<float> query(dim);
  for (float& x : query) x = static_cast<float>(rng.Uniform(-4.0, 4.0));

  const auto got =
      RerankTopK(store.m, store.params, query, 8, candidates.data(),
                 static_cast<int>(candidates.size()), nullptr);
  ExpectBitIdentical(got,
                     FloatOracle(store.m, store.params, query, 8, candidates));
  for (const search::Neighbor& nb : got) {
    EXPECT_EQ(nb.index % 3, 0) << "non-candidate row leaked into the top-k";
  }
}

TEST(RerankTopKTest, DuplicateRowsTieBreakByAscendingRowIndex) {
  const int dim = 4;
  QuantizationParams params =
      QuantizationParams::Compute({{-1.0f, -1.0f, -1.0f, -1.0f},
                                   {1.0f, 1.0f, 1.0f, 1.0f}},
                                  dim)
          .value();
  QuantizedMatrix m(dim);
  const std::vector<float> same = {0.5f, -0.5f, 0.25f, 0.0f};
  std::vector<int8_t> q(dim);
  ASSERT_TRUE(params.QuantizeRow(same.data(), q.data()).ok());
  for (int i = 0; i < 6; ++i) m.Append(q.data());

  const std::vector<float> query = {0.0f, 0.0f, 0.0f, 0.0f};
  const auto got = RerankTopK(m, params, query, 4, nullptr, 0, nullptr);
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].index, i) << "ties must resolve by ascending row";
    EXPECT_EQ(got[i].distance, got[0].distance);
  }
}

TEST(RerankTopKTest, KAtLeastNReturnsEveryRowExactly) {
  Rng rng(73);
  const Store store = MakeStore(5, 9, rng);
  std::vector<float> query(9, 0.0f);
  const auto got = RerankTopK(store.m, store.params, query, 12, nullptr, 0,
                              nullptr);
  ExpectBitIdentical(
      got, FloatOracle(store.m, store.params, query, 12, AllRows(5)));
  EXPECT_EQ(got.size(), 5u);
}

TEST(RerankTopKTest, NonFiniteQueryFallsBackWithoutCrashing) {
  Rng rng(74);
  const Store store = MakeStore(30, 8, rng);
  std::vector<float> query(8, 0.0f);
  query[3] = std::numeric_limits<float>::quiet_NaN();
  RerankCounters counters;
  const auto got =
      RerankTopK(store.m, store.params, query, 5, nullptr, 0, &counters);
  // The result set still has k rows (distances are NaN-poisoned, but the
  // call must not assert or read out of bounds) and nothing was banded.
  EXPECT_EQ(got.size(), 5u);
  EXPECT_EQ(SnapshotCounters(counters).banded_queries, 0u);
  EXPECT_EQ(SnapshotCounters(counters).band_violations, 0u);
}

TEST(RerankTopKTest, CountersAccountForEveryQuery) {
  Rng rng(75);
  const int n = 200;
  const Store store = MakeStore(n, 24, rng);
  RerankCounters counters;
  const int kQueries = 10;
  for (int t = 0; t < kQueries; ++t) {
    std::vector<float> query(24);
    for (float& x : query) x = static_cast<float>(rng.Uniform(-4.0, 4.0));
    (void)RerankTopK(store.m, store.params, query, 5, nullptr, 0, &counters);
  }
  const RerankSnapshot snap = SnapshotCounters(counters);
  EXPECT_EQ(snap.queries, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(snap.candidates, static_cast<uint64_t>(kQueries) * n);
  // Stage 2 re-checks at least the k winners of every query, never more
  // than everything.
  EXPECT_GE(snap.rechecked, static_cast<uint64_t>(kQueries) * 5);
  EXPECT_LE(snap.rechecked, snap.candidates);
  EXPECT_EQ(snap.band_violations, 0u);
  EXPECT_GT(snap.recheck_rate(), 0.0);
  EXPECT_LE(snap.recheck_rate(), 1.0);
  // With n >> k and a healthy spread, the band prunes most candidates —
  // the point of stage 1. A loose bound so the test doesn't ride the rng.
  EXPECT_LT(snap.recheck_rate(), 0.9);
  if (snap.banded_queries > 0) {
    EXPECT_GT(snap.mean_band_width(), 0.0);
  }
}

}  // namespace
}  // namespace traj2hash::quant
