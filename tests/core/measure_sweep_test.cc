// Parameterised end-to-end training sweep: Traj2Hash must train and produce
// useful retrieval under every measure the paper evaluates (Frechet,
// Hausdorff, DTW), including the grid-representation swap to node2vec.

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "embedding/node2vec.h"
#include "eval/metrics.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

struct SweepSetup {
  Traj2HashConfig cfg;
  std::vector<traj::Trajectory> corpus;
  TrainingData data;
  std::vector<traj::Trajectory> queries;
  std::vector<traj::Trajectory> database;
  std::vector<std::vector<int>> truth;
};

SweepSetup MakeSetup(dist::Measure measure) {
  SweepSetup s;
  s.cfg.dim = 8;
  s.cfg.num_blocks = 1;
  s.cfg.num_heads = 2;
  s.cfg.epochs = 4;
  s.cfg.samples_per_anchor = 6;
  s.cfg.batch_size = 8;

  Rng rng(31);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  s.corpus = GenerateTrips(city, 220, rng);
  s.data.seeds.assign(s.corpus.begin(), s.corpus.begin() + 24);
  s.data.seed_distances =
      dist::PairwiseMatrix(s.data.seeds, dist::GetDistance(measure));
  s.data.triplet_corpus = s.corpus;
  s.queries.assign(s.corpus.begin() + 24, s.corpus.begin() + 32);
  s.database.assign(s.corpus.begin() + 32, s.corpus.end());
  s.truth = eval::ExactTopK(s.queries, s.database,
                            dist::GetDistance(measure), 50);
  return s;
}

class MeasureSweepTest : public ::testing::TestWithParam<dist::Measure> {};

TEST_P(MeasureSweepTest, TrainsAndRetrievesAboveChance) {
  SweepSetup s = MakeSetup(GetParam());
  Rng rng(32);
  auto model = std::move(Traj2Hash::Create(s.cfg, s.corpus, rng).value());
  embedding::GridPretrainOptions pre;
  pre.samples_per_epoch = 800;
  pre.epochs = 1;
  model->PretrainGrids(pre, rng);
  Trainer trainer(model.get(),
                  TrainerOptions{.triplets_per_step = 4, .refine_epochs = 10});
  const auto report = trainer.Fit(s.data, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const auto m = eval::EvaluateEuclidean(EmbedAll(*model, s.queries),
                                         EmbedAll(*model, s.database),
                                         s.truth);
  // Chance HR@50 is 50/188 ~ 0.27; a trained model must beat it clearly.
  EXPECT_GT(m.hr50, 0.4) << dist::MeasureName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasureSweepTest,
                         ::testing::Values(dist::Measure::kFrechet,
                                           dist::Measure::kHausdorff,
                                           dist::Measure::kDtw),
                         [](const auto& info) {
                           return dist::MeasureName(info.param);
                         });

TEST(GridSwapTest, Node2vecRepresentationTrainsEndToEnd) {
  SweepSetup s = MakeSetup(dist::Measure::kFrechet);
  s.cfg.fine_cell_m = 500.0;  // keep the node2vec lattice small
  Rng rng(33);
  auto model = std::move(Traj2Hash::Create(s.cfg, s.corpus, rng).value());
  const traj::Grid& grid = model->fine_grid();
  auto n2v = std::make_unique<embedding::Node2vecGridEmbedding>(
      grid.num_x(), grid.num_y(), s.cfg.dim, rng);
  embedding::Node2vecOptions opt;
  opt.dim = s.cfg.dim;
  opt.walk_length = 8;
  opt.num_walks = 1;
  opt.window = 3;
  n2v->Train(opt, rng);
  model->UseGridRepresentation(std::move(n2v), rng);

  Trainer trainer(model.get(),
                  TrainerOptions{.triplets_per_step = 2, .refine_epochs = 5});
  const auto report = trainer.Fit(s.data, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(model->Embed(s.queries[0]).size(), 8u);
}

}  // namespace
}  // namespace traj2hash::core
