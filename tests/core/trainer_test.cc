#include "core/trainer.h"

#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

struct Fixture {
  Traj2HashConfig cfg;
  std::vector<traj::Trajectory> seeds;
  std::vector<traj::Trajectory> corpus;
  TrainingData data;
};

Fixture MakeFixture(dist::Measure measure, int num_seeds = 24,
                    uint64_t seed = 21) {
  Fixture f;
  f.cfg.dim = 8;
  f.cfg.num_blocks = 1;
  f.cfg.num_heads = 2;
  f.cfg.epochs = 3;
  f.cfg.samples_per_anchor = 6;
  f.cfg.batch_size = 8;
  f.cfg.triplet_batch_size = 4;

  Rng rng(seed);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  f.corpus = GenerateTrips(city, 80, rng);
  f.seeds.assign(f.corpus.begin(), f.corpus.begin() + num_seeds);

  f.data.seeds = f.seeds;
  f.data.seed_distances =
      dist::PairwiseMatrix(f.seeds, dist::GetDistance(measure));
  f.data.triplet_corpus = f.corpus;
  return f;
}

TEST(TrainerTest, RejectsInconsistentData) {
  Rng rng(1);
  Fixture f = MakeFixture(dist::Measure::kFrechet);
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  Trainer trainer(model.get());

  TrainingData bad = f.data;
  bad.seed_distances.pop_back();
  EXPECT_FALSE(trainer.Fit(bad, rng).ok());

  bad = f.data;
  bad.seeds.resize(2);
  bad.seed_distances.resize(4);
  EXPECT_FALSE(trainer.Fit(bad, rng).ok());

  bad = f.data;
  bad.val_queries = f.seeds;  // truth missing
  EXPECT_FALSE(trainer.Fit(bad, rng).ok());
}

TEST(TrainerTest, LossDecreasesAndTripletsAreUsed) {
  Rng rng(2);
  Fixture f = MakeFixture(dist::Measure::kFrechet);
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  embedding::GridPretrainOptions pre;
  pre.samples_per_epoch = 500;
  pre.epochs = 1;
  model->PretrainGrids(pre, rng);
  TrainerOptions options;
  options.triplets_per_step = 4;
  options.refine_epochs = 0;  // joint phase only for this test
  Trainer trainer(model.get(), options);
  const auto report = trainer.Fit(f.data, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& epochs = report.value().epochs;
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_LT(epochs.back().wmse, epochs.front().wmse * 1.5 + 1e-3);
  EXPECT_GT(report.value().num_triplets_used, 0);
}

TEST(TrainerTest, TrainingImprovesRetrievalOverUntrained) {
  Rng rng(3);
  Fixture f = MakeFixture(dist::Measure::kFrechet, 32);
  // Validation = seeds queried against seeds (small but meaningful).
  f.data.val_queries.assign(f.seeds.begin(), f.seeds.begin() + 8);
  f.data.val_db = f.seeds;
  f.data.val_truth =
      eval::ExactTopK(f.data.val_queries, f.data.val_db,
                      dist::GetDistance(dist::Measure::kFrechet), 50);
  f.cfg.epochs = 5;

  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  const double before =
      eval::EvaluateEuclidean(EmbedAll(*model, f.data.val_queries),
                              EmbedAll(*model, f.data.val_db), f.data.val_truth)
          .hr10;
  Trainer trainer(model.get(), TrainerOptions{.triplets_per_step = 2});
  const auto report = trainer.Fit(f.data, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().best_val_hr10, before);
  EXPECT_GE(report.value().best_epoch, 0);
}

TEST(TrainerTest, BetaGrowsWithEpochs) {
  Rng rng(4);
  Fixture f = MakeFixture(dist::Measure::kDtw);
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  TrainerOptions options;
  options.refine_epochs = 5;
  Trainer trainer(model.get(), options);
  ASSERT_TRUE(trainer.Fit(f.data, rng).ok());
  // Joint epochs + refinement epochs each grow beta once.
  EXPECT_FLOAT_EQ(model->beta(), 1.0f + 8.0f * f.cfg.beta_growth);
}

TEST(TrainerTest, RefinementImprovesOrKeepsValidation) {
  Rng rng(9);
  Fixture f = MakeFixture(dist::Measure::kFrechet, 32);
  f.data.val_queries.assign(f.seeds.begin(), f.seeds.begin() + 8);
  f.data.val_db = f.seeds;
  f.data.val_truth =
      eval::ExactTopK(f.data.val_queries, f.data.val_db,
                      dist::GetDistance(dist::Measure::kFrechet), 50);
  // Without refinement.
  Rng rng_a(10);
  auto base = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng_a).value());
  TrainerOptions no_refine;
  no_refine.refine_epochs = 0;
  const auto r0 = Trainer(base.get(), no_refine).Fit(f.data, rng_a);
  ASSERT_TRUE(r0.ok());
  // With refinement (same seeds).
  Rng rng_b(10);
  auto refined = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng_b).value());
  TrainerOptions with_refine;
  with_refine.refine_epochs = 20;
  const auto r1 = Trainer(refined.get(), with_refine).Fit(f.data, rng_b);
  ASSERT_TRUE(r1.ok());
  // Refinement continues optimising the same objective from the phase-1
  // best; the selected combined validation score can only stay or improve.
  EXPECT_GE(r1.value().best_val_hr10, r0.value().best_val_hr10 - 1e-9);
  EXPECT_GT(r1.value().epochs.size(), r0.value().epochs.size());
}

TEST(TrainerTest, GammaZeroSkipsHashObjectives) {
  Rng rng(5);
  Fixture f = MakeFixture(dist::Measure::kFrechet);
  f.cfg.gamma = 0.0f;
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  Trainer trainer(model.get());
  const auto report = trainer.Fit(f.data, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().num_triplets_used, 0);
  for (const EpochStats& e : report.value().epochs) {
    EXPECT_EQ(e.rank_loss, 0.0);
    EXPECT_EQ(e.triplet_loss, 0.0);
  }
}

TEST(TrainerTest, AblationsTrainWithoutCrashing) {
  for (const bool grids : {true, false}) {
    for (const bool rev : {true, false}) {
      Rng rng(6);
      Fixture f = MakeFixture(dist::Measure::kFrechet, 16);
      f.cfg.use_grid_channel = grids;
      f.cfg.use_rev_aug = rev;
      f.cfg.use_triplets = grids;  // vary triplets too
      f.cfg.epochs = 1;
      auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
      Trainer trainer(model.get(), TrainerOptions{.triplets_per_step = 2});
      EXPECT_TRUE(trainer.Fit(f.data, rng).ok())
          << "grids=" << grids << " rev=" << rev;
    }
  }
}

TEST(TrainerTest, DivergenceGuardAbortsOnExplodingLearningRate) {
  Rng rng(31);
  Fixture f = MakeFixture(dist::Measure::kFrechet);
  f.cfg.lr = 1e30f;  // guarantees overflow to inf/NaN within a step or two
  f.cfg.epochs = 4;
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  TrainerOptions options;
  options.refine_epochs = 0;
  options.max_bad_steps = 1;
  Trainer trainer(model.get(), options);
  const auto report = trainer.Fit(f.data, rng);
  ASSERT_FALSE(report.ok()) << "divergence must surface as a Status";
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(TrainerTest, NonFiniteBatchesAreSkippedWithoutStepping) {
  Rng rng(32);
  Fixture f = MakeFixture(dist::Measure::kFrechet);
  f.cfg.epochs = 1;
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  // Poison one weight: every batch's loss is NaN, so every batch must be
  // skipped — and with a roomy max_bad_steps budget Fit still completes.
  model->TrainableParameters()[0]->value()[0] =
      std::numeric_limits<float>::quiet_NaN();
  const auto before = model->SnapshotParameters();
  TrainerOptions options;
  options.refine_epochs = 0;
  options.max_bad_steps = 1000;
  Trainer trainer(model.get(), options);
  const auto report = trainer.Fit(f.data, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // No optimiser step ran, so parameters are bit-identical (memcmp: NaN
  // compares unequal to itself under operator==).
  const auto after = model->SnapshotParameters();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i].size(), after[i].size());
    EXPECT_EQ(std::memcmp(before[i].data(), after[i].data(),
                          before[i].size() * sizeof(float)),
              0)
        << "tensor " << i << " was stepped during a poisoned batch";
  }
}

TEST(SimilarityFromDistancesTest, RangeAndMonotonicity) {
  const std::vector<double> d = {0.0, 10.0, 10.0, 0.0};
  const auto s = SimilarityFromDistances(d, 2, 4.0f);
  EXPECT_DOUBLE_EQ(s[0], 1.0);  // zero distance -> similarity 1
  EXPECT_GT(s[1], 0.0);
  EXPECT_LT(s[1], 1.0);
  const std::vector<double> d2 = {0.0, 5.0, 20.0, 5.0, 0.0, 10.0,
                                  20.0, 10.0, 0.0};
  const auto s2 = SimilarityFromDistances(d2, 3, 4.0f);
  EXPECT_GT(s2[1], s2[2]);  // closer pair -> higher similarity
}

}  // namespace
}  // namespace traj2hash::core
