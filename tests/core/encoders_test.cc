#include "core/encoders.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace traj2hash::core {
namespace {

std::vector<traj::Point> Zigzag(int n) {
  std::vector<traj::Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({0.1 * i, i % 2 == 0 ? 0.2 : -0.2});
  }
  return pts;
}

class GpsEncoderReadOutTest : public ::testing::TestWithParam<ReadOut> {};

TEST_P(GpsEncoderReadOutTest, OutputShapeIsOneByDim) {
  Rng rng(1);
  GpsEncoder enc(16, 2, 4, GetParam(), rng);
  const nn::Tensor h = enc.Forward(Zigzag(9));
  EXPECT_EQ(h->rows(), 1);
  EXPECT_EQ(h->cols(), 16);
}

TEST_P(GpsEncoderReadOutTest, SinglePointTrajectoryWorks) {
  Rng rng(2);
  GpsEncoder enc(8, 1, 2, GetParam(), rng);
  const nn::Tensor h = enc.Forward({{0.5, -0.5}});
  EXPECT_EQ(h->cols(), 8);
}

INSTANTIATE_TEST_SUITE_P(ReadOuts, GpsEncoderReadOutTest,
                         ::testing::Values(ReadOut::kLowerBound,
                                           ReadOut::kMean, ReadOut::kCls),
                         [](const auto& info) {
                           switch (info.param) {
                             case ReadOut::kLowerBound:
                               return "LowerBound";
                             case ReadOut::kMean:
                               return "Mean";
                             case ReadOut::kCls:
                               return "Cls";
                           }
                           return "Unknown";
                         });

TEST(GpsEncoderTest, ReadOutsSelectTheRightTokens) {
  // With zero attention blocks, the lower-bound read-out is exactly the
  // first token's embedding: insensitive to every other point. Mean pooling
  // must remain sensitive to all points.
  Rng rng(3);
  GpsEncoder lower(16, 0, 4, ReadOut::kLowerBound, rng);
  Rng rng_mean(3);
  GpsEncoder mean(16, 0, 4, ReadOut::kMean, rng_mean);
  const std::vector<traj::Point> base = Zigzag(10);
  std::vector<traj::Point> tail_moved = base;
  tail_moved[9].x += 5.0;
  tail_moved[9].y += 5.0;

  auto delta = [](const nn::Tensor& a, const nn::Tensor& b) {
    double acc = 0.0;
    for (int c = 0; c < a->cols(); ++c) {
      acc += std::abs(a->at(0, c) - b->at(0, c));
    }
    return acc;
  };
  EXPECT_EQ(delta(lower.Forward(base), lower.Forward(tail_moved)), 0.0);
  EXPECT_GT(delta(mean.Forward(base), mean.Forward(tail_moved)), 1e-6);

  std::vector<traj::Point> head_moved = base;
  head_moved[0].x += 5.0;
  EXPECT_GT(delta(lower.Forward(base), lower.Forward(head_moved)), 1e-6);
}

TEST(GpsEncoderTest, ClsHasExtraParameter) {
  Rng rng(4);
  GpsEncoder lb(16, 1, 2, ReadOut::kLowerBound, rng);
  GpsEncoder cls(16, 1, 2, ReadOut::kCls, rng);
  EXPECT_EQ(cls.Parameters().size(), lb.Parameters().size() + 1);
}

TEST(GridChannelEncoderTest, OutputShapeAndGradFlow) {
  Rng rng(5);
  embedding::DecomposedGridEmbedding rep(10, 10, 12, rng);
  GridChannelEncoder enc(&rep, 16, rng);
  const nn::Tensor h = enc.Forward({{1, 2}, {2, 2}, {3, 4}});
  EXPECT_EQ(h->rows(), 1);
  EXPECT_EQ(h->cols(), 16);
  EXPECT_TRUE(h->requires_grad());
}

TEST(GridChannelEncoderTest, AdaptsProviderDimension) {
  Rng rng(6);
  embedding::DecomposedGridEmbedding rep(10, 10, 24, rng);  // dim != out dim
  GridChannelEncoder enc(&rep, 8, rng);
  EXPECT_EQ(enc.Forward({{0, 0}})->cols(), 8);
}

TEST(GridChannelEncoderTest, OrderSensitiveThroughPositions) {
  Rng rng(7);
  embedding::DecomposedGridEmbedding rep(10, 10, 8, rng);
  GridChannelEncoder enc(&rep, 8, rng);
  const nn::Tensor fwd = enc.Forward({{1, 1}, {5, 5}, {9, 9}});
  const nn::Tensor rev = enc.Forward({{9, 9}, {5, 5}, {1, 1}});
  double diff = 0.0;
  for (int c = 0; c < 8; ++c) {
    diff += std::abs(fwd->at(0, c) - rev->at(0, c));
  }
  EXPECT_GT(diff, 1e-6);  // positional encoding breaks permutation symmetry
}

}  // namespace
}  // namespace traj2hash::core
