#include "core/index.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<Traj2Hash> model;
};

Env MakeEnv() {
  Env env;
  Rng rng(81);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, 120, rng);
  Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

TEST(TrajectoryIndexTest, AddAssignsSequentialIds) {
  Env env = MakeEnv();
  TrajectoryIndex index(env.model.get());
  EXPECT_EQ(index.Add(env.corpus[0]), 0);
  EXPECT_EQ(index.Add(env.corpus[1]), 1);
  EXPECT_EQ(index.size(), 2);
}

TEST(TrajectoryIndexTest, EuclideanQueryMatchesManualPath) {
  Env env = MakeEnv();
  TrajectoryIndex index(env.model.get());
  std::vector<traj::Trajectory> db(env.corpus.begin() + 10,
                                   env.corpus.begin() + 60);
  index.AddAll(db);
  const auto via_index = index.QueryEuclidean(env.corpus[0], 5);
  const auto manual = search::TopKEuclidean(
      EmbedAll(*env.model, db), env.model->Embed(env.corpus[0]), 5);
  ASSERT_EQ(via_index.size(), manual.size());
  for (size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(via_index[i].index, manual[i].index);
    EXPECT_DOUBLE_EQ(via_index[i].distance, manual[i].distance);
  }
}

TEST(TrajectoryIndexTest, HammingQueryMatchesManualHybrid) {
  Env env = MakeEnv();
  TrajectoryIndex index(env.model.get());
  std::vector<traj::Trajectory> db(env.corpus.begin() + 10,
                                   env.corpus.begin() + 80);
  index.AddAll(db);
  const search::HammingIndex manual(HashAll(*env.model, db));
  const auto via_index = index.QueryHamming(env.corpus[1], 5);
  const auto direct =
      manual.HybridTopK(env.model->HashCode(env.corpus[1]), 5);
  ASSERT_EQ(via_index.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_index[i].index, direct[i].index);
  }
}

TEST(TrajectoryIndexTest, IncrementalInsertIsQueryable) {
  Env env = MakeEnv();
  TrajectoryIndex index(env.model.get());
  index.AddAll({env.corpus.begin() + 10, env.corpus.begin() + 40});
  // Insert the query's twin afterwards; it must become the top hit.
  const int id = index.Add(env.corpus[5]);
  const auto top = index.QueryEuclidean(env.corpus[5], 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].index, id);
  EXPECT_NEAR(top[0].distance, 0.0, 1e-5);
  const auto ham = index.QueryHamming(env.corpus[5], 1);
  EXPECT_EQ(ham[0].distance, 0.0);
}

TEST(TrajectoryIndexDeathTest, EmptyIndexQueriesRejected) {
  Env env = MakeEnv();
  TrajectoryIndex index(env.model.get());
  EXPECT_DEATH(index.QueryEuclidean(env.corpus[0], 1), "CHECK");
  EXPECT_DEATH(index.QueryHamming(env.corpus[0], 1), "CHECK");
}

}  // namespace
}  // namespace traj2hash::core
