// Focused tests of the hash layer's algebra: Eq. 15 projection structure,
// Eq. 16 sign semantics, the Hamming/inner-product identity the paper uses
// to rewrite Eq. 18 into Eq. 19, and the tanh(beta) continuation limit.

#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "nn/ops.h"
#include "search/code.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

std::unique_ptr<Traj2Hash> TinyModel(std::vector<traj::Trajectory>& corpus,
                                     uint64_t seed = 61) {
  Rng rng(seed);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  corpus = GenerateTrips(city, 8, rng);
  Traj2HashConfig cfg;
  cfg.dim = 16;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  return std::move(Traj2Hash::Create(cfg, corpus, rng).value());
}

TEST(HashLayerTest, ProjectionHalvesAndConcatenates) {
  // Eq. 15: the first half of h_f depends only on h, the second only on
  // h_r. Verify by perturbing each fused feature separately.
  std::vector<traj::Trajectory> corpus;
  auto model = TinyModel(corpus);
  const auto [h, h_r] = model->EncodeFused(corpus[0]);
  ASSERT_TRUE(h_r != nullptr);
  const auto base = model->ProjectFused(h, h_r)->value();

  nn::Tensor h2 = nn::AddScalar(h, 1.0f);
  const auto first_changed = model->ProjectFused(h2, h_r)->value();
  for (int c = 0; c < 8; ++c) EXPECT_NE(first_changed[c], base[c]);
  for (int c = 8; c < 16; ++c) EXPECT_EQ(first_changed[c], base[c]);

  nn::Tensor hr2 = nn::AddScalar(h_r, 1.0f);
  const auto second_changed = model->ProjectFused(h, hr2)->value();
  for (int c = 0; c < 8; ++c) EXPECT_EQ(second_changed[c], base[c]);
  for (int c = 8; c < 16; ++c) EXPECT_NE(second_changed[c], base[c]);
}

TEST(HashLayerTest, SharedProjectorAcrossDirections) {
  // Both halves use the SAME W_p (Eq. 15): projecting (h, h) must produce
  // two identical halves.
  std::vector<traj::Trajectory> corpus;
  auto model = TinyModel(corpus);
  const auto [h, h_r] = model->EncodeFused(corpus[1]);
  (void)h_r;
  const auto twin = model->ProjectFused(h, h)->value();
  for (int c = 0; c < 8; ++c) EXPECT_EQ(twin[c], twin[c + 8]);
}

TEST(HashLayerTest, HammingInnerProductIdentity) {
  // The paper's rewrite H(z1, z2) = (d_h - <z1, z2>)/2 over sign vectors,
  // checked against the packed-code HammingDistance for model codes.
  std::vector<traj::Trajectory> corpus;
  auto model = TinyModel(corpus);
  for (int i = 0; i + 1 < 6; i += 2) {
    const auto e1 = model->Embed(corpus[i]);
    const auto e2 = model->Embed(corpus[i + 1]);
    int dot = 0;
    for (size_t c = 0; c < e1.size(); ++c) {
      dot += (e1[c] > 0 ? 1 : -1) * (e2[c] > 0 ? 1 : -1);
    }
    const int expected = (static_cast<int>(e1.size()) - dot) / 2;
    EXPECT_EQ(search::HammingDistance(model->HashCode(corpus[i]),
                                      model->HashCode(corpus[i + 1])),
              expected);
  }
}

TEST(HashLayerTest, RelaxedCodeConvergesToSign) {
  // tanh(beta * x) -> sign(x) as beta grows (the HashNet continuation).
  std::vector<traj::Trajectory> corpus;
  auto model = TinyModel(corpus);
  const nn::Tensor h_f = model->EncodeContinuous(corpus[2]);
  const search::Code hard = search::PackSigns(h_f->value());
  model->set_beta(500.0f);
  const nn::Tensor relaxed = model->RelaxedCode(h_f);
  for (int c = 0; c < relaxed->cols(); ++c) {
    const bool bit = (hard.words[c / 64] >> (c % 64)) & 1ull;
    const float expected = bit ? 1.0f : -1.0f;
    // Components exactly at 0 map to -1 in PackSigns and to 0 in tanh;
    // everything else saturates to the matching sign.
    if (std::abs(h_f->value()[c]) > 1e-3f) {
      EXPECT_NEAR(relaxed->at(0, c), expected, 0.05f) << c;
    }
  }
}

TEST(HashLayerTest, BetaOnlyAffectsRelaxedCodes) {
  std::vector<traj::Trajectory> corpus;
  auto model = TinyModel(corpus);
  const auto before = model->Embed(corpus[3]);
  const auto code_before = model->HashCode(corpus[3]);
  model->set_beta(77.0f);
  EXPECT_EQ(model->Embed(corpus[3]), before);
  EXPECT_EQ(model->HashCode(corpus[3]), code_before);
}

}  // namespace
}  // namespace traj2hash::core
