// Determinism contract of data-parallel training (TrainerOptions::
// num_threads): at a fixed seed the entire optimisation trajectory — per-
// epoch losses, validation scores, selected epoch, final parameters — must
// be bit-identical for any thread count. Units reduce in fixed order and all
// RNG draws stay on the main thread, so this is exact equality, not
// tolerance comparison.

#include "core/trainer.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

struct Fixture {
  Traj2HashConfig cfg;
  std::vector<traj::Trajectory> corpus;
  TrainingData data;
};

Fixture MakeFixture() {
  Fixture f;
  f.cfg.dim = 8;
  f.cfg.num_blocks = 1;
  f.cfg.num_heads = 2;
  f.cfg.epochs = 2;
  f.cfg.samples_per_anchor = 6;
  f.cfg.batch_size = 8;

  Rng rng(51);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  f.corpus = GenerateTrips(city, 60, rng);
  f.data.seeds.assign(f.corpus.begin(), f.corpus.begin() + 20);
  f.data.seed_distances = dist::PairwiseMatrix(
      f.data.seeds, dist::GetDistance(dist::Measure::kFrechet));
  f.data.triplet_corpus = f.corpus;
  // Validation exercises the pooled EmbedAll path and epoch selection.
  f.data.val_queries.assign(f.data.seeds.begin(), f.data.seeds.begin() + 6);
  f.data.val_db = f.data.seeds;
  f.data.val_truth =
      eval::ExactTopK(f.data.val_queries, f.data.val_db,
                      dist::GetDistance(dist::Measure::kFrechet), 20);
  return f;
}

struct RunOutput {
  TrainReport report;
  std::vector<std::vector<float>> final_embeddings;
};

RunOutput RunFit(const Fixture& f, int num_threads) {
  // Fresh RNGs with fixed seeds: both model init and the training stream are
  // identical across calls, so any divergence comes from threading.
  Rng rng(91);
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  // Grids deliberately NOT pre-trained/frozen: gradients then flow into the
  // decomposed grid tables, covering sink registration of every parameter.
  TrainerOptions options;
  options.triplets_per_step = 4;
  options.refine_epochs = 2;
  options.num_threads = num_threads;
  Trainer trainer(model.get(), options);
  auto report = trainer.Fit(f.data, rng);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {std::move(report).value(), EmbedAll(*model, f.data.seeds)};
}

TEST(TrainerParallelTest, LossTrajectoryBitIdenticalAcrossThreadCounts) {
  const Fixture f = MakeFixture();
  const RunOutput serial = RunFit(f, 1);
  const RunOutput pooled = RunFit(f, 4);

  ASSERT_EQ(serial.report.epochs.size(), pooled.report.epochs.size());
  for (size_t e = 0; e < serial.report.epochs.size(); ++e) {
    const EpochStats& a = serial.report.epochs[e];
    const EpochStats& b = pooled.report.epochs[e];
    // Exact float equality is the contract, not a tolerance.
    EXPECT_EQ(a.wmse, b.wmse) << "epoch " << e;
    EXPECT_EQ(a.rank_loss, b.rank_loss) << "epoch " << e;
    EXPECT_EQ(a.triplet_loss, b.triplet_loss) << "epoch " << e;
    EXPECT_EQ(a.val_hr10, b.val_hr10) << "epoch " << e;
    EXPECT_EQ(a.val_hamming_hr10, b.val_hamming_hr10) << "epoch " << e;
  }
  EXPECT_EQ(serial.report.best_epoch, pooled.report.best_epoch);
  EXPECT_EQ(serial.report.best_val_hr10, pooled.report.best_val_hr10);
  EXPECT_EQ(serial.report.num_triplets_used, pooled.report.num_triplets_used);

  ASSERT_EQ(serial.final_embeddings.size(), pooled.final_embeddings.size());
  for (size_t i = 0; i < serial.final_embeddings.size(); ++i) {
    EXPECT_EQ(serial.final_embeddings[i], pooled.final_embeddings[i])
        << "embedding " << i;
  }
}

TEST(TrainerParallelTest, TwoThreadsAlsoMatchSerial) {
  const Fixture f = MakeFixture();
  const RunOutput serial = RunFit(f, 1);
  const RunOutput pooled = RunFit(f, 2);
  ASSERT_EQ(serial.report.epochs.size(), pooled.report.epochs.size());
  EXPECT_EQ(serial.report.epochs.back().wmse,
            pooled.report.epochs.back().wmse);
  EXPECT_EQ(serial.final_embeddings, pooled.final_embeddings);
}

TEST(EmbedBatchTest, PooledBatchEncodeMatchesSerial) {
  Fixture f = MakeFixture();
  Rng rng(17);
  auto model = std::move(Traj2Hash::Create(f.cfg, f.corpus, rng).value());
  ThreadPool pool(4);
  const auto serial = model->EmbedBatch(f.corpus, nullptr);
  const auto pooled = model->EmbedBatch(f.corpus, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "trajectory " << i;
  }
  // HashAll rides the same path; codes must agree bit-for-bit too.
  const auto codes_serial = HashAll(*model, f.corpus);
  const auto codes_pooled = HashAll(*model, f.corpus, &pool);
  ASSERT_EQ(codes_serial.size(), codes_pooled.size());
  for (size_t i = 0; i < codes_serial.size(); ++i) {
    EXPECT_EQ(codes_serial[i].words, codes_pooled[i].words);
  }
}

}  // namespace
}  // namespace traj2hash::core
