#include "core/model.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

Traj2HashConfig TinyConfig() {
  Traj2HashConfig cfg;
  cfg.dim = 16;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  cfg.epochs = 1;
  return cfg;
}

std::vector<traj::Trajectory> Corpus(int n, uint64_t seed = 11) {
  Rng rng(seed);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 16;
  return GenerateTrips(city, n, rng);
}

double EuclideanDist(const std::vector<float>& a,
                     const std::vector<float>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc);
}

TEST(ModelTest, CreateValidatesInput) {
  Rng rng(1);
  Traj2HashConfig bad = TinyConfig();
  bad.dim = 15;
  EXPECT_FALSE(Traj2Hash::Create(bad, Corpus(5), rng).ok());
  EXPECT_FALSE(Traj2Hash::Create(TinyConfig(), {}, rng).ok());
  EXPECT_TRUE(Traj2Hash::Create(TinyConfig(), Corpus(5), rng).ok());
}

TEST(ModelTest, EmbeddingHasConfiguredDimension) {
  Rng rng(2);
  const auto corpus = Corpus(10);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  EXPECT_EQ(model->Embed(corpus[0]).size(), 16u);
  EXPECT_EQ(model->HashCode(corpus[0]).num_bits, 16);
}

TEST(ModelTest, ReverseSymmetricPropertyHolds) {
  // Lemma 3: with reverse augmentation,
  // E(h_f(T1), h_f(T2)) == E(h_f(T1^r), h_f(T2^r)).
  Rng rng(3);
  const auto corpus = Corpus(10);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  for (int i = 0; i + 1 < 8; i += 2) {
    const double fwd = EuclideanDist(model->Embed(corpus[i]),
                                     model->Embed(corpus[i + 1]));
    const double rev =
        EuclideanDist(model->Embed(traj::Reversed(corpus[i])),
                      model->Embed(traj::Reversed(corpus[i + 1])));
    EXPECT_NEAR(fwd, rev, 1e-4 * (1.0 + fwd));
  }
}

TEST(ModelTest, WithoutRevAugPropertyGenerallyBreaks) {
  // Sanity check of the ablation: -RevAug should NOT satisfy Lemma 3.
  Rng rng(4);
  Traj2HashConfig cfg = TinyConfig();
  cfg.use_rev_aug = false;
  const auto corpus = Corpus(10, 12);
  auto model = std::move(Traj2Hash::Create(cfg, corpus, rng).value());
  double total_gap = 0.0;
  for (int i = 0; i + 1 < 8; i += 2) {
    const double fwd = EuclideanDist(model->Embed(corpus[i]),
                                     model->Embed(corpus[i + 1]));
    const double rev =
        EuclideanDist(model->Embed(traj::Reversed(corpus[i])),
                      model->Embed(traj::Reversed(corpus[i + 1])));
    total_gap += std::abs(fwd - rev);
  }
  EXPECT_GT(total_gap, 1e-4);
}

TEST(ModelTest, AblatedGridChannelStillEncodes) {
  Rng rng(5);
  Traj2HashConfig cfg = TinyConfig();
  cfg.use_grid_channel = false;
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(cfg, corpus, rng).value());
  EXPECT_EQ(model->Embed(corpus[0]).size(), 16u);
  EXPECT_DOUBLE_EQ(model->PretrainGrids({}, rng), 0.0);  // no-op
}

TEST(ModelTest, TrainableParametersExcludeFrozenGrids) {
  Rng rng(6);
  const auto corpus = Corpus(6);
  auto with_grids =
      std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  Traj2HashConfig no_grids_cfg = TinyConfig();
  no_grids_cfg.use_grid_channel = false;
  Rng rng2(6);
  auto without =
      std::move(Traj2Hash::Create(no_grids_cfg, corpus, rng2).value());
  // Grid channel adds the MLP_g and fuse parameters but NOT the (frozen)
  // coordinate tables, whose combined entries would dwarf everything else.
  size_t with_total = 0, without_total = 0;
  for (const auto& p : with_grids->TrainableParameters()) {
    with_total += p->value().size();
  }
  for (const auto& p : without->TrainableParameters()) {
    without_total += p->value().size();
  }
  const auto& grid = with_grids->fine_grid();
  const size_t table_entries =
      static_cast<size_t>(grid.num_x() + grid.num_y()) * 16;
  EXPECT_GT(with_total, without_total);
  EXPECT_LT(with_total, without_total + table_entries);
}

TEST(ModelTest, RelaxedCodeSharpensWithBeta) {
  Rng rng(7);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const nn::Tensor h = model->EncodeContinuous(corpus[0]);
  model->set_beta(1.0f);
  const nn::Tensor soft = model->RelaxedCode(h);
  model->set_beta(50.0f);
  const nn::Tensor hard = model->RelaxedCode(h);
  double soft_mag = 0.0, hard_mag = 0.0;
  for (int c = 0; c < h->cols(); ++c) {
    soft_mag += std::abs(soft->at(0, c));
    hard_mag += std::abs(hard->at(0, c));
  }
  EXPECT_GT(hard_mag, soft_mag);
  for (int c = 0; c < h->cols(); ++c) {
    EXPECT_LE(std::abs(hard->at(0, c)), 1.0f);
  }
}

TEST(ModelTest, HashCodeMatchesEmbeddingSigns) {
  Rng rng(8);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const std::vector<float> emb = model->Embed(corpus[2]);
  const search::Code code = model->HashCode(corpus[2]);
  for (size_t b = 0; b < emb.size(); ++b) {
    const bool bit = (code.words[b / 64] >> (b % 64)) & 1ull;
    EXPECT_EQ(bit, emb[b] > 0.0f) << b;
  }
}

TEST(ModelTest, SnapshotRestoreRoundTrip) {
  Rng rng(9);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const auto snapshot = model->SnapshotParameters();
  const auto before = model->Embed(corpus[0]);
  // Perturb all parameters.
  for (const auto& p : model->TrainableParameters()) {
    for (float& v : p->value()) v += 0.37f;
  }
  EXPECT_NE(model->Embed(corpus[0]), before);
  model->RestoreParameters(snapshot);
  EXPECT_EQ(model->Embed(corpus[0]), before);
}

TEST(ModelTest, SaveLoadRoundTrip) {
  Rng rng(10);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const auto before = model->Embed(corpus[1]);
  const std::string path =
      (std::filesystem::temp_directory_path() / "t2h_model_test.bin").string();
  ASSERT_TRUE(model->Save(path).ok());

  Rng rng2(999);  // different init
  auto loaded = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng2).value());
  EXPECT_NE(loaded->Embed(corpus[1]), before);
  ASSERT_TRUE(loaded->Load(path).ok());
  EXPECT_EQ(loaded->Embed(corpus[1]), before);
  std::remove(path.c_str());
}

TEST(ModelTest, LoadRejectsArchitectureMismatch) {
  Rng rng(12);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const std::string path =
      (std::filesystem::temp_directory_path() / "t2h_fingerprint.bin")
          .string();
  ASSERT_TRUE(model->Save(path).ok());

  Traj2HashConfig other = TinyConfig();
  other.read_out = ReadOut::kMean;  // different architecture
  Rng rng2(13);
  auto mismatched =
      std::move(Traj2Hash::Create(other, corpus, rng2).value());
  const Status s = mismatched->Load(path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ModelTest, LoadRejectsTruncatedAndBitFlippedFiles) {
  Rng rng(14);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const std::string path =
      (std::filesystem::temp_directory_path() / "t2h_corrupt_model.bin")
          .string();
  ASSERT_TRUE(model->Save(path).ok());
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }

  Rng rng2(15);
  auto victim = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng2).value());
  const auto before = victim->Embed(corpus[0]);

  // Truncation: the checksum no longer matches.
  {
    std::ofstream out(path, std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_EQ(victim->Load(path).code(), StatusCode::kDataLoss);

  // Single bit flip deep in the tensor payload.
  std::string flipped = contents;
  flipped[flipped.size() - 5] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  EXPECT_EQ(victim->Load(path).code(), StatusCode::kDataLoss);

  // Failed loads must leave the model parameters untouched.
  EXPECT_EQ(victim->Embed(corpus[0]), before);
  std::remove(path.c_str());
}

TEST(ModelTest, LoadAcceptsLegacyUnchecksummedFormat) {
  Rng rng(16);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  const auto expected = model->Embed(corpus[1]);
  const std::string path =
      (std::filesystem::temp_directory_path() / "t2h_legacy_model.bin")
          .string();
  ASSERT_TRUE(model->Save(path).ok());
  std::string v3;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    v3 = buf.str();
  }
  // The v2 layout is the v3 layout minus the version+crc words and with the
  // old magic, so a legacy file can be synthesised from a fresh save.
  const uint64_t legacy_magic = 0x54324841534832ull;  // "T2HASH2"
  std::string v2(reinterpret_cast<const char*>(&legacy_magic),
                 sizeof(legacy_magic));
  v2.append(v3, sizeof(uint64_t) + 2 * sizeof(uint32_t), std::string::npos);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(v2.data(), static_cast<std::streamsize>(v2.size()));
  }

  Rng rng2(17);
  auto loaded = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng2).value());
  ASSERT_TRUE(loaded->Load(path).ok());
  EXPECT_EQ(loaded->Embed(corpus[1]), expected);
  std::remove(path.c_str());
}

TEST(ModelTest, LoadRejectsGarbageAndMissing) {
  Rng rng(11);
  const auto corpus = Corpus(6);
  auto model = std::move(Traj2Hash::Create(TinyConfig(), corpus, rng).value());
  EXPECT_FALSE(model->Load("/nonexistent/m.bin").ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "t2h_garbage.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a model";
  }
  EXPECT_FALSE(model->Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace traj2hash::core
