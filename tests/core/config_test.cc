#include "core/config.h"

#include <gtest/gtest.h>

namespace traj2hash::core {
namespace {

TEST(ConfigTest, DefaultsAreValidAndMatchPaper) {
  const Traj2HashConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  // §V-A5 parameter settings.
  EXPECT_EQ(cfg.dim, 64);
  EXPECT_EQ(cfg.num_blocks, 2);
  EXPECT_EQ(cfg.num_heads, 4);
  EXPECT_FLOAT_EQ(cfg.alpha, 5.0f);
  EXPECT_FLOAT_EQ(cfg.gamma, 6.0f);
  EXPECT_EQ(cfg.samples_per_anchor, 10);
  EXPECT_EQ(cfg.batch_size, 20);
  EXPECT_EQ(cfg.epochs, 100);
  EXPECT_FLOAT_EQ(cfg.lr, 1e-3f);
  EXPECT_DOUBLE_EQ(cfg.fine_cell_m, 50.0);
  EXPECT_DOUBLE_EQ(cfg.coarse_cell_m, 500.0);
  EXPECT_EQ(cfg.read_out, ReadOut::kLowerBound);
}

TEST(ConfigTest, RejectsOddDim) {
  Traj2HashConfig cfg;
  cfg.dim = 63;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsDimNotDivisibleByHeads) {
  Traj2HashConfig cfg;
  cfg.dim = 64;
  cfg.num_heads = 5;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsOddSampleCount) {
  Traj2HashConfig cfg;
  cfg.samples_per_anchor = 7;  // Eq. 18 pairs samples
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsNonPositiveScalars) {
  Traj2HashConfig cfg;
  cfg.theta = 0.0f;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Traj2HashConfig();
  cfg.lr = -1.0f;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Traj2HashConfig();
  cfg.fine_cell_m = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Traj2HashConfig();
  cfg.epochs = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, ExtensionFlagsDefaultOffOrPaperAligned) {
  const Traj2HashConfig cfg;
  EXPECT_FALSE(cfg.use_layer_norm);  // Eq. 12 has bare residuals
  EXPECT_TRUE(cfg.cross_pairing);    // repo default (DESIGN.md par 6)
  EXPECT_FLOAT_EQ(cfg.beta_init, 1.0f);  // HashNet: "initialized to 1"
}

TEST(ConfigTest, RejectsBadBetaSchedule) {
  Traj2HashConfig cfg;
  cfg.beta_init = 0.0f;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = Traj2HashConfig();
  cfg.beta_growth = -1.0f;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, AllowsZeroGammaAndAlpha) {
  // gamma = 0 (Fig. 9 sweep) and alpha = 0 (Fig. 8 sweep) are valid points.
  Traj2HashConfig cfg;
  cfg.gamma = 0.0f;
  cfg.alpha = 0.0f;
  EXPECT_TRUE(cfg.Validate().ok());
}

}  // namespace
}  // namespace traj2hash::core
