#include "core/triplets.h"

#include <cmath>

#include <gtest/gtest.h>

#include "distance/distance.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

using traj::Point;
using traj::Trajectory;

Trajectory Line(double x0, double y0, double x1, double y1, int n,
                int64_t id) {
  Trajectory t;
  t.id = id;
  for (int i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / (n - 1);
    t.points.push_back(Point{x0 + f * (x1 - x0), y0 + f * (y1 - y0)});
  }
  return t;
}

traj::Grid CoarseGrid(const std::vector<Trajectory>& corpus, double cell) {
  return traj::Grid::Create(traj::ComputeBoundingBox(corpus), cell).value();
}

TEST(TripletGeneratorTest, ClustersSharedCoarseSequences) {
  // Two nearly identical trips plus one far-away trip.
  std::vector<Trajectory> corpus = {
      Line(0, 0, 400, 0, 10, 0), Line(5, 5, 395, 8, 10, 1),
      Line(5000, 5000, 5400, 5000, 10, 2), Line(5002, 5004, 5396, 5003, 10, 3)};
  const traj::Grid grid = CoarseGrid(corpus, 500.0);
  FastTripletGenerator gen(grid, corpus);
  EXPECT_EQ(gen.num_clusters(), 2);
  EXPECT_EQ(gen.num_multi_clusters(), 2);
}

TEST(TripletGeneratorTest, TripletsRespectClusterMembership) {
  std::vector<Trajectory> corpus = {
      Line(0, 0, 400, 0, 10, 0), Line(5, 5, 395, 8, 10, 1),
      Line(5000, 5000, 5400, 5000, 10, 2), Line(5002, 5004, 5396, 5003, 10, 3)};
  const traj::Grid grid = CoarseGrid(corpus, 500.0);
  FastTripletGenerator gen(grid, corpus);
  Rng rng(1);
  const auto triplets = gen.Generate(200, rng);
  ASSERT_EQ(triplets.size(), 200u);
  for (const Triplet& t : triplets) {
    EXPECT_NE(t.anchor, t.positive);
    EXPECT_NE(t.anchor, t.negative);
    EXPECT_NE(t.positive, t.negative);
    const std::string key_a =
        grid.SequenceKey(grid.Map(corpus[t.anchor], true));
    const std::string key_p =
        grid.SequenceKey(grid.Map(corpus[t.positive], true));
    const std::string key_n =
        grid.SequenceKey(grid.Map(corpus[t.negative], true));
    EXPECT_EQ(key_a, key_p);
    EXPECT_NE(key_a, key_n);
  }
}

TEST(TripletGeneratorTest, NoMultiClustersGivesEmpty) {
  std::vector<Trajectory> corpus = {Line(0, 0, 400, 0, 10, 0),
                                    Line(5000, 5000, 5400, 5000, 10, 1)};
  const traj::Grid grid = CoarseGrid(corpus, 500.0);
  FastTripletGenerator gen(grid, corpus);
  EXPECT_EQ(gen.num_multi_clusters(), 0);
  Rng rng(2);
  EXPECT_TRUE(gen.Generate(10, rng).empty());
}

TEST(TripletGeneratorTest, SingleClusterCoveringCorpusGivesEmpty) {
  // All trajectories identical: positives exist but no negative does.
  std::vector<Trajectory> corpus = {Line(0, 0, 400, 0, 10, 0),
                                    Line(1, 1, 399, 1, 10, 1),
                                    Line(2, 2, 398, 2, 10, 2)};
  const traj::Grid grid = CoarseGrid(corpus, 500.0);
  FastTripletGenerator gen(grid, corpus);
  Rng rng(3);
  EXPECT_TRUE(gen.Generate(10, rng).empty());
}

TEST(TripletGeneratorTest, PositivePairsAreGeometricallyBounded) {
  // The paper's §IV-F claim: trajectories in the same coarse cluster have
  // Frechet distance bounded by the cell size scale. Verify on synthetic
  // data: positives are closer than negatives under Frechet.
  Rng rng(4);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 16;
  const std::vector<Trajectory> corpus = GenerateTrips(city, 300, rng);
  const traj::Grid grid = CoarseGrid(corpus, 500.0);
  FastTripletGenerator gen(grid, corpus);
  if (gen.num_multi_clusters() == 0) GTEST_SKIP() << "no clusters formed";
  const auto triplets = gen.Generate(30, rng);
  const double cell_diag = 500.0 * std::sqrt(2.0);
  int positives_closer = 0;
  for (const Triplet& t : triplets) {
    const double dp = dist::Frechet(corpus[t.anchor], corpus[t.positive]);
    const double dn = dist::Frechet(corpus[t.anchor], corpus[t.negative]);
    // Same deduped coarse sequence => pointwise within one cell plus
    // adjacency slack; use the conservative 2-cell-diagonal bound.
    EXPECT_LE(dp, 2.0 * cell_diag);
    if (dp < dn) ++positives_closer;
  }
  EXPECT_GT(positives_closer, static_cast<int>(triplets.size() * 0.8));
}

TEST(TripletGeneratorTest, GenerateIsDeterministicUnderSeed) {
  std::vector<Trajectory> corpus = {
      Line(0, 0, 400, 0, 10, 0), Line(5, 5, 395, 8, 10, 1),
      Line(5000, 5000, 5400, 5000, 10, 2), Line(5002, 5004, 5396, 5003, 10, 3)};
  const traj::Grid grid = CoarseGrid(corpus, 500.0);
  FastTripletGenerator gen(grid, corpus);
  Rng r1(7), r2(7);
  const auto a = gen.Generate(20, r1);
  const auto b = gen.Generate(20, r2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].anchor, b[i].anchor);
    EXPECT_EQ(a[i].positive, b[i].positive);
    EXPECT_EQ(a[i].negative, b[i].negative);
  }
}

}  // namespace
}  // namespace traj2hash::core
