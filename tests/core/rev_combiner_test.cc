// Verifies the paper's footnote 1: combining a trajectory's embedding with
// its reversed version by ELEMENT-WISE SUM also satisfies the reverse
// symmetric property, but introduces the unwanted extra identity
//   E(h(T1)+h(T1^r), h(T2)+h(T2^r)) == E(..., h(T2^r)+h(T2))
// which makes a trajectory indistinguishable from its own reverse — i.e.
// E(sum(T1), sum(T2)) == E(sum(T1), sum(T2^r)) for ALL pairs, collapsing
// direction information. Concatenation (Lemma 3) does not have this defect,
// which is why Traj2Hash concatenates.

#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "nn/ops.h"
#include "traj/synthetic.h"

namespace traj2hash::core {
namespace {

double Euclid(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc);
}

std::vector<float> Sum(const std::vector<float>& a,
                       const std::vector<float>& b) {
  std::vector<float> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

class RevCombinerTest : public ::testing::Test {
 protected:
  RevCombinerTest() {
    Rng rng(5);
    traj::CityConfig city = traj::CityConfig::PortoLike();
    city.max_points = 14;
    corpus_ = GenerateTrips(city, 12, rng);
    // A model WITHOUT reverse augmentation provides the raw encoder h(.)
    // whose outputs we combine manually both ways.
    Traj2HashConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 1;
    cfg.num_heads = 2;
    cfg.use_rev_aug = false;
    model_ = std::move(Traj2Hash::Create(cfg, corpus_, rng).value());
  }

  std::vector<float> H(const traj::Trajectory& t) const {
    return model_->Embed(t);
  }

  std::vector<traj::Trajectory> corpus_;
  std::unique_ptr<Traj2Hash> model_;
};

TEST_F(RevCombinerTest, SumCombinerIsReverseSymmetric) {
  // The footnote concedes sum satisfies the reverse symmetric property.
  for (int i = 0; i + 1 < 8; i += 2) {
    const auto& t1 = corpus_[i];
    const auto& t2 = corpus_[i + 1];
    const auto s1 = Sum(H(t1), H(traj::Reversed(t1)));
    const auto s2 = Sum(H(t2), H(traj::Reversed(t2)));
    const auto s1r = Sum(H(traj::Reversed(t1)), H(t1));
    const auto s2r = Sum(H(traj::Reversed(t2)), H(t2));
    EXPECT_NEAR(Euclid(s1, s2), Euclid(s1r, s2r), 1e-4);
  }
}

TEST_F(RevCombinerTest, SumCombinerCollapsesDirection) {
  // ...but sum makes T2 and T2^r identical to every query: the unexpected
  // property E(h_f(T1), h_f(T2)) == E(h_f(T1), h_f(T2^r)).
  for (int i = 0; i + 1 < 8; i += 2) {
    const auto& t1 = corpus_[i];
    const auto& t2 = corpus_[i + 1];
    const auto s1 = Sum(H(t1), H(traj::Reversed(t1)));
    const auto s2 = Sum(H(t2), H(traj::Reversed(t2)));
    const auto s2_rev = Sum(H(traj::Reversed(t2)), H(t2));
    EXPECT_NEAR(Euclid(s1, s2), Euclid(s1, s2_rev), 1e-4);
  }
}

TEST_F(RevCombinerTest, ConcatCombinerKeepsDirection) {
  // Concatenation distinguishes a trajectory from its reverse (the exact
  // measures generally do too: D(T1, T2) != D(T1, T2^r)).
  Rng rng(6);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 14;
  Traj2HashConfig cfg;
  cfg.dim = 16;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  cfg.use_rev_aug = true;  // concatenation path (Lemma 3)
  auto model = std::move(Traj2Hash::Create(cfg, corpus_, rng).value());
  double total_gap = 0.0;
  for (int i = 0; i + 1 < 8; i += 2) {
    const auto e1 = model->Embed(corpus_[i]);
    const auto e2 = model->Embed(corpus_[i + 1]);
    const auto e2_rev = model->Embed(traj::Reversed(corpus_[i + 1]));
    total_gap += std::abs(Euclid(e1, e2) - Euclid(e1, e2_rev));
  }
  EXPECT_GT(total_gap, 1e-3);
}

}  // namespace
}  // namespace traj2hash::core
