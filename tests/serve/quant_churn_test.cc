// Churn property test for the quantized embedding store (DESIGN.md §17):
// under a random stream of inserts / removes / updates / compactions,
// QueryRerankTopK on a quantize-mode ShardedIndex must stay bit-identical
// to an exact float top-k over the stored lattice (EmbeddingOf of every
// live id), for shard counts {1, 4} and every strategy, serial and pooled.
// Plus the TSan acceptance stress: concurrent re-rank queries against
// concurrent mutations (including the in-place param widening and
// compaction rescales) must be race-free.
#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/code.h"
#include "search/flat_storage.h"
#include "search/knn.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace traj2hash::serve {
namespace {

constexpr int kBits = 32;
constexpr int kDim = 8;

search::Code RandomCode(Rng& rng) {
  std::vector<float> v(kBits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

std::vector<float> RandomEmbedding(Rng& rng) {
  std::vector<float> e(kDim);
  for (float& x : e) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  return e;
}

/// What QueryRerankTopK must equal: exact float top-k over the STORED
/// (lattice) embeddings of every live id, ties by ascending id. Reading the
/// lattice back through EmbeddingOf keeps the oracle correct across both
/// the in-place param widening and compaction-time rescales.
std::vector<search::Neighbor> LatticeOracle(const ShardedIndex& index,
                                            const std::vector<int>& live_ids,
                                            const std::vector<float>& query,
                                            int k) {
  std::vector<int> ids = live_ids;
  std::sort(ids.begin(), ids.end());
  search::FlatMatrix lattice(kDim);
  std::vector<int> row_to_id;
  for (const int id : ids) {
    const std::vector<float> e = index.EmbeddingOf(id);
    if (e.empty()) continue;  // entries without embeddings are skipped
    lattice.Append(e);
    row_to_id.push_back(id);
  }
  std::vector<search::Neighbor> top = search::TopKEuclidean(lattice, query, k);
  for (search::Neighbor& nb : top) nb.index = row_to_id[nb.index];
  return top;
}

void ExpectBitIdentical(const std::vector<search::Neighbor>& got,
                        const std::vector<search::Neighbor>& want,
                        const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << what << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " rank " << i;
  }
}

TEST(QuantChurnTest, RerankMatchesLatticeOracleAcrossShardsAndStrategies) {
  ThreadPool pool(3);
  for (const int num_shards : {1, 4}) {
    for (const search::SearchStrategy strategy :
         {search::SearchStrategy::kBrute, search::SearchStrategy::kRadius2,
          search::SearchStrategy::kMih}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards) + " strategy=" +
                   std::to_string(static_cast<int>(strategy)));
      Rng rng(900 + num_shards + 10 * static_cast<int>(strategy));
      // Aggressive compaction trigger so the churn actually crosses the
      // delta -> base boundary (and its requantization) many times.
      ShardedIndex index(num_shards, kBits, strategy, /*mih_substrings=*/0,
                         /*compact_min_ops=*/8, /*compact_ratio=*/0.1,
                         /*quantize=*/true, kDim);
      ASSERT_TRUE(index.quantize());
      std::vector<int> live;
      for (int step = 0; step < 160; ++step) {
        const double dice = rng.Uniform(0.0, 1.0);
        if (dice < 0.55 || live.empty()) {
          // One in eight entries carries no embedding: the Hamming stage
          // admits it, the re-rank stage must skip it.
          std::vector<float> e;
          if (rng.Uniform(0.0, 1.0) > 0.125) e = RandomEmbedding(rng);
          const auto id = index.Insert(RandomCode(rng), std::move(e));
          ASSERT_TRUE(id.ok());
          live.push_back(id.value());
        } else if (dice < 0.72) {
          const int victim = live[step % live.size()];
          ASSERT_TRUE(index.Remove(victim).ok());
          live.erase(std::find(live.begin(), live.end(), victim));
        } else if (dice < 0.92) {
          const int victim = live[step % live.size()];
          ASSERT_TRUE(
              index.Update(victim, RandomCode(rng), RandomEmbedding(rng))
                  .ok());
        } else {
          index.CompactAll();
        }
        if (live.empty() || step % 3 != 0) continue;

        const search::Code qcode = RandomCode(rng);
        const std::vector<float> qemb = RandomEmbedding(rng);
        const int k = 1 + step % 7;
        // num_candidates covers every live entry, so each shard's Hamming
        // stage admits all of its rows and the merged result must equal
        // the full lattice oracle.
        const auto want = LatticeOracle(index, live, qemb, k);
        ExpectBitIdentical(index.QueryRerankTopK(qcode, qemb, k, 10000),
                           want, "serial");
        ExpectBitIdentical(
            index.QueryRerankTopK(qcode, qemb, k, 10000, &pool), want,
            "pooled");
      }
      EXPECT_GT(index.rerank_stats().queries, 0u);
      EXPECT_EQ(index.rerank_stats().band_violations, 0u);
      EXPECT_GT(index.embedding_resident_bytes(), 0u);
    }
  }
}

/// TSan acceptance: re-rank readers against writers that insert (widening
/// the params in place while the store is all-delta), update, remove and
/// synchronously compact. Results are only sanity-checked — the database
/// mutates underneath the queries — but every access must be race-free.
TEST(QuantChurnTest, ConcurrentRerankAndMutationsAreRaceFree) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kPerThread = 100;
  ShardedIndex index(4, kBits, search::SearchStrategy::kMih,
                     /*mih_substrings=*/0, /*compact_min_ops=*/16,
                     /*compact_ratio=*/0.1, /*quantize=*/true, kDim);
  {
    Rng rng(7000);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(index.Insert(RandomCode(rng), RandomEmbedding(rng)).ok());
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&index, t] {
      Rng rng(7100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const double dice = rng.Uniform(0.0, 1.0);
        if (dice < 0.6) {
          (void)index.Insert(RandomCode(rng), RandomEmbedding(rng));
        } else if (dice < 0.8) {
          (void)index.Remove(static_cast<int>(rng.UniformInt(0, 40)));
        } else if (dice < 0.95) {
          (void)index.Update(static_cast<int>(rng.UniformInt(0, 40)),
                             RandomCode(rng), RandomEmbedding(rng));
        } else {
          index.CompactAll();
        }
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&index, t] {
      Rng rng(7200 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const auto hits =
            index.QueryRerankTopK(RandomCode(rng), RandomEmbedding(rng), 5,
                                  64);
        EXPECT_LE(hits.size(), 5u);
        for (size_t j = 1; j < hits.size(); ++j) {
          EXPECT_LE(hits[j - 1].distance, hits[j].distance);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(index.rerank_stats().band_violations, 0u);
}

}  // namespace
}  // namespace traj2hash::serve
