// Unit tests for serve::BatchCoalescer (DESIGN.md §15): bit-identity of
// coalesced codes against the uncoalesced HashCode path, each flush cause
// (full batch / bounded wait / idle pool), and the deadline guard that keeps
// the bounded wait from eating a query's latency budget.
#include "serve/coalescer.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "traj/synthetic.h"

namespace traj2hash::serve {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<core::Traj2Hash> model;
};

Env MakeEnv(int count = 40) {
  Env env;
  Rng rng(23);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, count, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(core::Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

TEST(BatchCoalescerTest, LoneQueryFlushesIdleWithoutWaiting) {
  Env env = MakeEnv();
  ThreadPool pool(2);
  // An hour-long bounded wait: if the idle flush did not fire, this test
  // would hang instead of passing by luck.
  BatchCoalescer coalescer(env.model.get(), &pool,
                           {.max_batch = 8, .max_wait_us = 3'600'000'000});
  coalescer.BeginApproach();
  const search::Code code = coalescer.Encode(env.corpus[0], Deadline());
  EXPECT_EQ(code.words, env.model->HashCode(env.corpus[0]).words);
  EXPECT_EQ(coalescer.flushes_idle(), 1u);
  EXPECT_EQ(coalescer.flushes_full(), 0u);
  EXPECT_EQ(coalescer.flushes_deadline(), 0u);
  const OccupancyHistogram::Summary occ = coalescer.occupancy();
  EXPECT_EQ(occ.batches, 1u);
  EXPECT_EQ(occ.queries, 1u);
  EXPECT_EQ(occ.p50, 1);
}

TEST(BatchCoalescerTest, FullBatchCoalescesBitIdentically) {
  Env env = MakeEnv();
  ThreadPool pool(2);
  constexpr int kBatch = 6;
  BatchCoalescer coalescer(env.model.get(), &pool,
                           {.max_batch = kBatch, .max_wait_us = 3'600'000'000});
  // Announce every query before any thread encodes: the leader then knows
  // more arrivals are en route and waits for the full batch.
  for (int i = 0; i < kBatch; ++i) coalescer.BeginApproach();
  std::vector<search::Code> codes(kBatch);
  std::vector<std::thread> threads;
  for (int i = 0; i < kBatch; ++i) {
    threads.emplace_back([&, i] {
      codes[i] = coalescer.Encode(env.corpus[i], Deadline());
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(codes[i].words, env.model->HashCode(env.corpus[i]).words)
        << "query " << i;
  }
  EXPECT_EQ(coalescer.flushes_full(), 1u);
  const OccupancyHistogram::Summary occ = coalescer.occupancy();
  EXPECT_EQ(occ.batches, 1u);
  EXPECT_EQ(occ.queries, static_cast<uint64_t>(kBatch));
  EXPECT_EQ(occ.p50, kBatch);
  EXPECT_EQ(occ.max, kBatch);
}

TEST(BatchCoalescerTest, BoundedWaitFlushesWhenArrivalsStall) {
  Env env = MakeEnv();
  ThreadPool pool(2);
  BatchCoalescer coalescer(env.model.get(), &pool,
                           {.max_batch = 8, .max_wait_us = 2'000});
  // A second query is announced but never arrives: the idle flush cannot
  // fire, so the leader must give up at max_wait.
  coalescer.BeginApproach();  // the no-show
  coalescer.BeginApproach();
  const auto start = std::chrono::steady_clock::now();
  const search::Code code = coalescer.Encode(env.corpus[0], Deadline());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  coalescer.EndApproach();  // withdraw the no-show

  EXPECT_EQ(code.words, env.model->HashCode(env.corpus[0]).words);
  EXPECT_EQ(coalescer.flushes_deadline(), 1u);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2'000);
}

TEST(BatchCoalescerTest, QueryDeadlineCapsTheBoundedWait) {
  Env env = MakeEnv();
  ThreadPool pool(2);
  // max_wait is effectively infinite; only the query's own deadline (minus
  // the margin) can end the wait.
  BatchCoalescer coalescer(
      env.model.get(), &pool,
      {.max_batch = 8, .max_wait_us = 3'600'000'000, .deadline_margin_us = 100});
  coalescer.BeginApproach();  // a no-show keeps the idle flush from firing
  coalescer.BeginApproach();
  const auto start = std::chrono::steady_clock::now();
  const search::Code code =
      coalescer.Encode(env.corpus[0], Deadline::AfterMillis(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  coalescer.EndApproach();

  EXPECT_EQ(code.words, env.model->HashCode(env.corpus[0]).words);
  EXPECT_EQ(coalescer.flushes_deadline(), 1u);
  // Flushed around the deadline, far before the hour-long max_wait.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5'000);
}

TEST(BatchCoalescerTest, GenerationsPipelineAcrossManyThreads) {
  Env env = MakeEnv();
  ThreadPool pool(4);
  BatchCoalescer coalescer(env.model.get(), &pool,
                           {.max_batch = 4, .max_wait_us = 500});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const traj::Trajectory& q =
            env.corpus[(t * kPerThread + i) % env.corpus.size()];
        coalescer.BeginApproach();
        const search::Code code = coalescer.Encode(q, Deadline());
        if (code.words != env.model->HashCode(q).words) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const OccupancyHistogram::Summary occ = coalescer.occupancy();
  EXPECT_EQ(occ.queries, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(occ.batches, 1u);
  EXPECT_LE(occ.batches, occ.queries);
  EXPECT_EQ(coalescer.flushes_full() + coalescer.flushes_deadline() +
                coalescer.flushes_idle(),
            occ.batches);
}

}  // namespace
}  // namespace traj2hash::serve
