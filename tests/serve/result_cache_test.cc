// Unit tests for serve::ResultCache (DESIGN.md §15): LRU bounds, the
// epoch-exactness + stable-epoch rules that make caching safe under churn,
// single-flight leader election, and the counter invariants the stats-json
// schema relies on (hits + misses == lookups, stale <= misses).
#include "serve/result_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "traj/trajectory.h"

namespace traj2hash::serve {
namespace {

std::vector<search::Neighbor> MakeResult(int id) {
  return {{id, 1.0}, {id + 1, 2.0}};
}

void ExpectCounterInvariants(const ResultCache::Stats& s) {
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_LE(s.stale, s.misses);
  EXPECT_LE(s.flight_served, s.hits);
}

TEST(ResultCacheTest, DisabledCacheIsANoOp) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  std::vector<search::Neighbor> out;
  EXPECT_FALSE(cache.Lookup("key", 0, &out));
  cache.Insert("key", 0, 0, MakeResult(1));
  EXPECT_EQ(cache.size(), 0);

  ResultCache::Ticket ticket;
  EXPECT_EQ(cache.Acquire("key", 0, Deadline(), &out, &ticket),
            ResultCache::Outcome::kMiss);
  cache.Publish(&ticket, 0, 0, true, MakeResult(1));  // harmless on no ticket
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, 0u);
  EXPECT_EQ(s.insertions, 0u);
}

TEST(ResultCacheTest, HitsOnlyAtExactEpoch) {
  ResultCache cache(4);
  cache.Insert("key", 5, 5, MakeResult(7));
  EXPECT_EQ(cache.size(), 1);

  std::vector<search::Neighbor> out;
  ASSERT_TRUE(cache.Lookup("key", 5, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].index, 7);

  // The epoch moved on: the entry is dead, dropped on sight, and counted
  // as one stale miss. A second lookup misses without re-counting stale.
  EXPECT_FALSE(cache.Lookup("key", 6, &out));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup("key", 6, &out));

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.stale, 1u);
  ExpectCounterInvariants(s);
}

TEST(ResultCacheTest, InsertRequiresAStableEpoch) {
  ResultCache cache(4);
  // A mutation raced the probe (epoch advanced mid-computation): the result
  // is a fact about no single epoch and must not be cached.
  cache.Insert("key", 5, 6, MakeResult(1));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  ResultCache cache(2);
  cache.Insert("a", 1, 1, MakeResult(1));
  cache.Insert("b", 1, 1, MakeResult(2));
  std::vector<search::Neighbor> out;
  ASSERT_TRUE(cache.Lookup("a", 1, &out));  // touch: "b" is now the LRU
  cache.Insert("c", 1, 1, MakeResult(3));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_TRUE(cache.Lookup("a", 1, &out));
  EXPECT_TRUE(cache.Lookup("c", 1, &out));
  EXPECT_FALSE(cache.Lookup("b", 1, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  ExpectCounterInvariants(cache.stats());
}

TEST(ResultCacheTest, ReinsertUpdatesInPlace) {
  ResultCache cache(2);
  cache.Insert("a", 1, 1, MakeResult(1));
  cache.Insert("a", 2, 2, MakeResult(9));
  EXPECT_EQ(cache.size(), 1);
  std::vector<search::Neighbor> out;
  ASSERT_TRUE(cache.Lookup("a", 2, &out));
  EXPECT_EQ(out[0].index, 9);
}

TEST(ResultCacheTest, SingleFlightServesFollowersFromTheLeader) {
  ResultCache cache(4);
  std::vector<search::Neighbor> leader_out;
  ResultCache::Ticket leader_ticket;
  ASSERT_EQ(cache.Acquire("key", 3, Deadline(), &leader_out, &leader_ticket),
            ResultCache::Outcome::kLead);

  // The follower blocks on the flight; launch it, then publish.
  std::vector<search::Neighbor> follower_out;
  ResultCache::Outcome follower_outcome = ResultCache::Outcome::kMiss;
  std::thread follower([&] {
    ResultCache::Ticket t;
    follower_outcome = cache.Acquire("key", 3, Deadline(), &follower_out, &t);
  });
  // Wait until the follower is registered on the flight before publishing,
  // so the test deterministically exercises the blocking path.
  while (cache.stats().flight_waits == 0) std::this_thread::yield();
  cache.Publish(&leader_ticket, 3, 3, /*complete=*/true, MakeResult(5));
  follower.join();

  EXPECT_EQ(follower_outcome, ResultCache::Outcome::kHit);
  ASSERT_EQ(follower_out.size(), 2u);
  EXPECT_EQ(follower_out[0].index, 5);

  // The published result was also cached for later lookups.
  std::vector<search::Neighbor> out;
  EXPECT_TRUE(cache.Lookup("key", 3, &out));

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.flight_waits, 1u);
  EXPECT_EQ(s.flight_served, 1u);
  ExpectCounterInvariants(s);
}

TEST(ResultCacheTest, FollowerRejectsAFlightOlderThanItsAdmissionEpoch) {
  ResultCache cache(4);
  std::vector<search::Neighbor> out;
  ResultCache::Ticket leader_ticket;
  ASSERT_EQ(cache.Acquire("key", 5, Deadline(), &out, &leader_ticket),
            ResultCache::Outcome::kLead);

  // The follower was admitted after a mutation (epoch 6 > the leader's 5):
  // the leader's answer predates its view of the index and must not stand
  // in for it.
  ResultCache::Outcome follower_outcome = ResultCache::Outcome::kHit;
  std::thread follower([&] {
    std::vector<search::Neighbor> follower_out;
    ResultCache::Ticket t;
    follower_outcome = cache.Acquire("key", 6, Deadline(), &follower_out, &t);
  });
  while (cache.stats().flight_waits == 0) std::this_thread::yield();
  cache.Publish(&leader_ticket, 5, 5, /*complete=*/true, MakeResult(5));
  follower.join();
  EXPECT_EQ(follower_outcome, ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.stats().flight_served, 0u);
  ExpectCounterInvariants(cache.stats());
}

TEST(ResultCacheTest, AbandonedFlightDegradesFollowersToMiss) {
  ResultCache cache(4);
  std::vector<search::Neighbor> out;
  ResultCache::Ticket leader_ticket;
  ASSERT_EQ(cache.Acquire("key", 1, Deadline(), &out, &leader_ticket),
            ResultCache::Outcome::kLead);

  ResultCache::Outcome follower_outcome = ResultCache::Outcome::kHit;
  std::thread follower([&] {
    std::vector<search::Neighbor> follower_out;
    ResultCache::Ticket t;
    follower_outcome = cache.Acquire("key", 1, Deadline(), &follower_out, &t);
  });
  while (cache.stats().flight_waits == 0) std::this_thread::yield();
  cache.Abandon(&leader_ticket);
  follower.join();
  EXPECT_EQ(follower_outcome, ResultCache::Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0);
  ExpectCounterInvariants(cache.stats());
}

TEST(ResultCacheTest, FollowerWaitIsBoundedByItsDeadline) {
  ResultCache cache(4);
  std::vector<search::Neighbor> out;
  ResultCache::Ticket leader_ticket;
  ASSERT_EQ(cache.Acquire("key", 1, Deadline(), &out, &leader_ticket),
            ResultCache::Outcome::kLead);

  // The leader is stuck; a follower with a short deadline must degrade to
  // an ordinary miss instead of stalling behind it.
  std::vector<search::Neighbor> follower_out;
  ResultCache::Ticket t;
  const ResultCache::Outcome follower_outcome = cache.Acquire(
      "key", 1, Deadline::AfterMillis(20), &follower_out, &t);
  EXPECT_EQ(follower_outcome, ResultCache::Outcome::kMiss);
  cache.Abandon(&leader_ticket);
  ExpectCounterInvariants(cache.stats());
}

TEST(ResultCacheTest, ByteBudgetEvictsTheLruTail) {
  // Room for exactly three of these entries; the fourth insert must push
  // out the least recently used one even though the entry count (100) is
  // nowhere near exhausted.
  const size_t per_entry = ResultCache::EntryBytes("a", MakeResult(0));
  ResultCache cache(100, 3 * per_entry);
  cache.Insert("a", 1, 1, MakeResult(1));
  cache.Insert("b", 1, 1, MakeResult(2));
  cache.Insert("c", 1, 1, MakeResult(3));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.bytes(), 3 * per_entry);

  std::vector<search::Neighbor> out;
  ASSERT_TRUE(cache.Lookup("a", 1, &out));  // touch: "b" is now the LRU
  cache.Insert("d", 1, 1, MakeResult(4));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.bytes(), 3 * per_entry);
  EXPECT_FALSE(cache.Lookup("b", 1, &out));
  EXPECT_TRUE(cache.Lookup("a", 1, &out));
  EXPECT_TRUE(cache.Lookup("d", 1, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  ExpectCounterInvariants(cache.stats());
}

TEST(ResultCacheTest, BytesGaugeTracksInsertReplaceAndStaleDrop) {
  ResultCache cache(4);  // no byte bound: the gauge still has to be exact
  EXPECT_EQ(cache.bytes(), 0u);
  cache.Insert("key", 1, 1, MakeResult(1));
  EXPECT_EQ(cache.bytes(), ResultCache::EntryBytes("key", MakeResult(1)));

  // Replacing an entry re-charges it at the new result's size.
  const std::vector<search::Neighbor> bigger = {
      {1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0}};
  cache.Insert("key", 2, 2, bigger);
  EXPECT_EQ(cache.bytes(), ResultCache::EntryBytes("key", bigger));

  // A stale drop refunds the charge.
  std::vector<search::Neighbor> out;
  EXPECT_FALSE(cache.Lookup("key", 3, &out));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, LongGeometryEntriesEvictByBytesNotCount) {
  // Entries whose keys embed long query geometry blow the byte budget long
  // before the entry count: two short entries fit, one long key displaces
  // both.
  const std::string long_key(4096, 'g');
  ResultCache cache(100, ResultCache::EntryBytes(long_key, MakeResult(0)));
  cache.Insert("a", 1, 1, MakeResult(1));
  cache.Insert("b", 1, 1, MakeResult(2));
  EXPECT_EQ(cache.size(), 2);
  cache.Insert(long_key, 1, 1, MakeResult(3));
  std::vector<search::Neighbor> out;
  EXPECT_TRUE(cache.Lookup(long_key, 1, &out));
  EXPECT_FALSE(cache.Lookup("a", 1, &out));
  EXPECT_FALSE(cache.Lookup("b", 1, &out));
  EXPECT_LE(cache.bytes(), cache.max_bytes());
}

TEST(ResultCacheTest, EntryLargerThanTheBudgetEvictsItself) {
  // One pathological entry bigger than the whole budget may not pin the
  // cache over its bound: after the insert the budget holds again.
  ResultCache cache(100, 64);
  const std::string big_key(1024, 'k');
  cache.Insert(big_key, 1, 1, MakeResult(1));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.bytes(), 0u);
  ExpectCounterInvariants(cache.stats());
}

TEST(ResultCacheTest, NoByteBudgetBoundsByCountAlone) {
  ResultCache cache(2, 0);  // max_bytes 0 = unbounded
  const std::string long_key(1 << 16, 'g');
  cache.Insert(long_key, 1, 1, MakeResult(1));
  cache.Insert("b", 1, 1, MakeResult(2));
  EXPECT_EQ(cache.size(), 2);
  std::vector<search::Neighbor> out;
  EXPECT_TRUE(cache.Lookup(long_key, 1, &out));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCacheTest, CanonicalKeyCoversGeometryNotIds) {
  traj::Trajectory a;
  a.id = 1;
  a.points = {{0.25, 0.5}, {0.75, 1.0}};
  traj::Trajectory b = a;
  b.id = 2;  // same geometry, different routing metadata
  traj::Trajectory c = a;
  c.points[1].y = 1.5;

  std::string ka, kb, kc;
  ResultCache::AppendCanonicalKey(a, &ka);
  ResultCache::AppendCanonicalKey(b, &kb);
  ResultCache::AppendCanonicalKey(c, &kc);
  EXPECT_EQ(ka, kb);
  EXPECT_NE(ka, kc);

  // Scalar components keep distinct (k, strategy) combinations distinct.
  std::string k1, k2;
  ResultCache::AppendCanonicalKey(static_cast<int32_t>(7), &k1);
  ResultCache::AppendCanonicalKey(static_cast<int32_t>(8), &k2);
  EXPECT_NE(k1, k2);
}

}  // namespace
}  // namespace traj2hash::serve
