// Fault-injection tests for the fail-safe serving layer (DESIGN.md §11):
// deadline expiry mid-probe, admission-control shedding under a pinned
// burst, crash-safe snapshots (torn writes, bit flips, recovery), and the
// snapshot/rebuild equivalence across every search strategy. Everything is
// driven through common::FaultInjector, so no test depends on real clocks
// or scheduler timing.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "replica/replica.h"
#include "replica/router.h"
#include "serve/engine.h"
#include "traj/synthetic.h"

namespace traj2hash::serve {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<core::Traj2Hash> model;
};

Env MakeEnv(int count = 120) {
  Env env;
  Rng rng(23);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, count, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(core::Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSorted(const std::vector<search::Neighbor>& hits) {
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_TRUE(search::NeighborLess(hits[i - 1], hits[i]))
        << "result must stay in strict (distance, id) order";
  }
}

// ---------------------------------------------------------------------------
// Deadlines and graceful degradation
// ---------------------------------------------------------------------------

TEST(RobustnessTest, DeadlineExpiryMidProbeReturnsSortedPartial) {
  Env env = MakeEnv();
  QueryEngine engine(env.model.get(), {.num_threads = 1, .num_shards = 4});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 100});

  const QueryResult full = engine.Query(env.corpus[0], 10);
  ASSERT_TRUE(full.complete);
  ASSERT_EQ(full.neighbors.size(), 10u);

  // Force the deadline check to report expiry after two shards probed. The
  // deadline itself is infinite, so only the injector drives the outcome —
  // fully deterministic.
  FaultInjector fi;
  fi.Arm(faults::kShardProbe, /*skip=*/2, /*fire=*/FaultInjector::kForever);
  FaultInjector::Scope scope(&fi);
  const QueryResult partial = engine.Query(env.corpus[0], 10);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(partial.neighbors.empty()) << "two shards did complete";
  EXPECT_LE(partial.neighbors.size(), 10u);
  ExpectSorted(partial.neighbors);
  // Every partial hit is a genuine database entry with its exact distance:
  // it must appear in the full result or rank beyond its tail.
  for (const search::Neighbor& n : partial.neighbors) {
    EXPECT_GE(n.index, 0);
    EXPECT_LT(n.index, engine.size());
  }
}

TEST(RobustnessTest, DeadlineExpiryWithPartialsDisallowedReturnsEmpty) {
  Env env = MakeEnv(60);
  QueryEngine engine(env.model.get(), {.num_threads = 1, .num_shards = 3});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 50});

  FaultInjector fi;
  fi.Arm(faults::kShardProbe, /*skip=*/1);
  FaultInjector::Scope scope(&fi);
  QueryOptions options;
  options.allow_partial = false;
  const QueryResult result = engine.Query(env.corpus[0], 5, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.neighbors.empty());
}

TEST(RobustnessTest, AlreadyExpiredDeadlineFailsFastBeforeEncoding) {
  Env env = MakeEnv(40);
  QueryEngine engine(env.model.get(), {.num_threads = 2, .num_shards = 2});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 30});
  QueryOptions options;
  options.deadline = Deadline::AfterMillis(0);
  const QueryResult result = engine.Query(env.corpus[0], 5, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.neighbors.empty());
}

TEST(RobustnessTest, MihDeadlineExpiresBetweenRadiusRounds) {
  Env env = MakeEnv();
  QueryEngine engine(env.model.get(),
                     {.num_threads = 1,
                      .num_shards = 2,
                      .strategy = search::SearchStrategy::kMih});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 100});
  // Move the bulk-loaded entries from the per-shard deltas (flat scan, no
  // radius rounds) into the MIH base the radius loop actually probes.
  engine.CompactAll();
  const QueryResult full = engine.Query(env.corpus[3], 8);
  ASSERT_TRUE(full.complete);

  // Let each shard run radius 0, then expire inside the MIH radius loop.
  FaultInjector fi;
  fi.Arm(faults::kMihRadiusRound);
  FaultInjector::Scope scope(&fi);
  const QueryResult partial = engine.Query(env.corpus[3], 8);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.status.code(), StatusCode::kDeadlineExceeded);
  ExpectSorted(partial.neighbors);
  EXPECT_GT(fi.fired(faults::kMihRadiusRound), 0);
}

TEST(RobustnessTest, DefaultOptionsBitIdenticalWithAndWithoutDeadlinePlumbing) {
  Env env = MakeEnv();
  QueryEngine engine(env.model.get(), {.num_threads = 4, .num_shards = 4});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 100});
  for (int q = 0; q < 10; ++q) {
    const QueryResult a = engine.Query(env.corpus[q], 7);
    QueryOptions explicit_infinite;
    explicit_infinite.deadline = Deadline::Infinite();
    const QueryResult b = engine.Query(env.corpus[q], 7, explicit_infinite);
    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index);
      EXPECT_DOUBLE_EQ(a.neighbors[i].distance, b.neighbors[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(RobustnessTest, BurstAgainstFullQueueShedsDeterministically) {
  Env env = MakeEnv(60);
  QueryEngine engine(env.model.get(),
                     {.num_threads = 1,
                      .num_shards = 2,
                      .queue_depth = 2,
                      .overload_policy = OverloadPolicy::kReject});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 40});

  // Pin the single worker inside its first probe with a gate, then throw a
  // burst at the engine: admission happens at submission time, so exactly
  // queue_depth queries are admitted and every later arrival sheds.
  FaultInjector fi;
  fi.ArmGate(faults::kShardProbe);
  FaultInjector::Scope scope(&fi);

  constexpr int kBurst = 8;
  const std::vector<traj::Trajectory> burst(env.corpus.begin(),
                                            env.corpus.begin() + kBurst);
  std::vector<QueryResult> results;
  std::thread submitter(
      [&engine, &burst, &results] { results = engine.QueryBatch(burst, 5); });
  // The submission loop finishes (and the shed count settles) while the
  // worker is still parked at the gate; only then release it.
  while (engine.shed_count() < kBurst - 2) std::this_thread::yield();
  EXPECT_EQ(engine.shed_count(), kBurst - 2);
  fi.OpenGate(faults::kShardProbe);
  submitter.join();

  ASSERT_EQ(results.size(), static_cast<size_t>(kBurst));
  for (int q = 0; q < kBurst; ++q) {
    if (q < 2) {
      EXPECT_TRUE(results[q].complete) << "admitted query " << q;
      EXPECT_FALSE(results[q].neighbors.empty());
    } else {
      EXPECT_FALSE(results[q].complete) << "shed query " << q;
      EXPECT_EQ(results[q].status.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(results[q].neighbors.empty());
    }
  }
  EXPECT_EQ(engine.shed_count(), kBurst - 2);
}

TEST(RobustnessTest, BlockPolicyKeepsEveryQuery) {
  Env env = MakeEnv(60);
  QueryEngine engine(env.model.get(),
                     {.num_threads = 2,
                      .num_shards = 2,
                      .queue_depth = 1,
                      .overload_policy = OverloadPolicy::kBlock});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 40});
  const std::vector<traj::Trajectory> burst(env.corpus.begin(),
                                            env.corpus.begin() + 6);
  const std::vector<QueryResult> results = engine.QueryBatch(burst, 5);
  ASSERT_EQ(results.size(), 6u);
  for (const QueryResult& r : results) {
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.neighbors.empty());
  }
  EXPECT_EQ(engine.shed_count(), 0);
}

TEST(RobustnessTest, UnboundedQueueNeverSheds) {
  Env env = MakeEnv(40);
  QueryEngine engine(env.model.get(), {.num_threads = 2, .num_shards = 2});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 30});
  const std::vector<traj::Trajectory> burst(env.corpus.begin(),
                                            env.corpus.begin() + 20);
  for (const QueryResult& r : engine.QueryBatch(burst, 3)) {
    EXPECT_TRUE(r.complete);
  }
  EXPECT_EQ(engine.shed_count(), 0);
}

// ---------------------------------------------------------------------------
// Crash-safe snapshots
// ---------------------------------------------------------------------------

QueryEngineOptions WithStrategy(search::SearchStrategy strategy) {
  QueryEngineOptions options;
  options.num_threads = 2;
  options.num_shards = 3;
  options.strategy = strategy;
  return options;
}

TEST(RobustnessTest, SnapshotRoundTripBitIdenticalAcrossStrategies) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 90);
  const std::vector<traj::Trajectory> queries(env.corpus.begin() + 90,
                                              env.corpus.begin() + 110);
  for (const auto strategy :
       {search::SearchStrategy::kBrute, search::SearchStrategy::kRadius2,
        search::SearchStrategy::kMih}) {
    SCOPED_TRACE(search::StrategyName(strategy));
    QueryEngine built(env.model.get(), WithStrategy(strategy));
    built.InsertAll(db);
    const std::string path = TempPath("snapshot_roundtrip.bin");
    ASSERT_TRUE(built.SaveSnapshot(path).ok());

    QueryEngine restored(env.model.get(), WithStrategy(strategy));
    ASSERT_TRUE(restored.LoadSnapshot(path).ok());
    ASSERT_EQ(restored.size(), built.size());
    for (const traj::Trajectory& q : queries) {
      const QueryResult a = built.Query(q, 9);
      const QueryResult b = restored.Query(q, 9);
      ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
      for (size_t i = 0; i < a.neighbors.size(); ++i) {
        EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index);
        EXPECT_DOUBLE_EQ(a.neighbors[i].distance, b.neighbors[i].distance);
      }
    }
    // Embeddings ride along byte-for-byte (they back exact reranking).
    for (int id = 0; id < built.size(); id += 17) {
      EXPECT_EQ(restored.index().EmbeddingOf(id), built.index().EmbeddingOf(id));
    }
  }
}

TEST(RobustnessTest, SnapshotLoadsAcrossStrategyAndShardCount) {
  Env env = MakeEnv(80);
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 60);
  QueryEngine built(env.model.get(), WithStrategy(search::SearchStrategy::kMih));
  built.InsertAll(db);
  const std::string path = TempPath("snapshot_cross.bin");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  // The format stores global-id-ordered entries, so any shard count and any
  // strategy reproduce the identical logical database.
  QueryEngineOptions other;
  other.num_threads = 1;
  other.num_shards = 5;
  other.strategy = search::SearchStrategy::kBrute;
  QueryEngine restored(env.model.get(), other);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  ASSERT_EQ(restored.size(), built.size());
  for (int q = 60; q < 70; ++q) {
    const QueryResult a = built.Query(env.corpus[q], 6);
    const QueryResult b = restored.Query(env.corpus[q], 6);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index);
      EXPECT_DOUBLE_EQ(a.neighbors[i].distance, b.neighbors[i].distance);
    }
  }
}

TEST(RobustnessTest, TornSnapshotWriteLeavesPreviousSnapshotIntact) {
  Env env = MakeEnv(70);
  QueryEngine engine(env.model.get(), WithStrategy(search::SearchStrategy::kMih));
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 40});
  const std::string path = TempPath("snapshot_torn.bin");
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());
  const Result<std::string> before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  // Grow the database, then crash mid-save: the write is torn, the previous
  // snapshot file must be byte-identical and still loadable.
  engine.InsertAll({env.corpus.begin() + 40, env.corpus.begin() + 60});
  {
    FaultInjector fi;
    fi.Arm(faults::kFileWrite);
    FaultInjector::Scope scope(&fi);
    EXPECT_EQ(engine.SaveSnapshot(path).code(), StatusCode::kIoError);
  }
  const Result<std::string> after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());

  QueryEngine recovered(env.model.get(),
                        WithStrategy(search::SearchStrategy::kMih));
  ASSERT_TRUE(recovered.LoadSnapshot(path).ok());
  EXPECT_EQ(recovered.size(), 40) << "recovered the pre-crash database";
}

TEST(RobustnessTest, CorruptSnapshotRejectedWithDataLoss) {
  Env env = MakeEnv(50);
  QueryEngine engine(env.model.get(), WithStrategy(search::SearchStrategy::kMih));
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 30});
  const std::string path = TempPath("snapshot_corrupt.bin");
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());
  Result<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());

  // Single bit flip in the payload.
  std::string flipped = contents.value();
  flipped[flipped.size() / 2] ^= 0x04;
  ASSERT_TRUE(AtomicWriteFile(path, flipped).ok());
  QueryEngine victim(env.model.get(), WithStrategy(search::SearchStrategy::kMih));
  EXPECT_EQ(victim.LoadSnapshot(path).code(), StatusCode::kDataLoss);
  EXPECT_EQ(victim.size(), 0) << "failed load must leave the engine empty";

  // Truncation (as if the machine died before the tail reached disk).
  ASSERT_TRUE(
      AtomicWriteFile(path, contents.value().substr(0, contents.value().size() / 2))
          .ok());
  EXPECT_EQ(victim.LoadSnapshot(path).code(), StatusCode::kDataLoss);

  // Not a snapshot at all.
  ASSERT_TRUE(AtomicWriteFile(path, "these are not the bytes").ok());
  EXPECT_EQ(victim.LoadSnapshot(path).code(), StatusCode::kInvalidArgument);

  // Missing file.
  EXPECT_EQ(victim.LoadSnapshot(TempPath("no_such_snapshot.bin")).code(),
            StatusCode::kIoError);
  EXPECT_EQ(victim.size(), 0);
}

TEST(RobustnessTest, SnapshotLoadRequiresEmptyEngineAndMatchingWidth) {
  Env env = MakeEnv(50);
  QueryEngine engine(env.model.get(), WithStrategy(search::SearchStrategy::kMih));
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 20});
  const std::string path = TempPath("snapshot_preconditions.bin");
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());

  EXPECT_EQ(engine.LoadSnapshot(path).code(), StatusCode::kFailedPrecondition)
      << "loading into a non-empty engine must refuse";

  // A model with a different code width must reject the snapshot.
  Rng rng(5);
  core::Traj2HashConfig wide;
  wide.dim = 16;
  wide.num_blocks = 1;
  wide.num_heads = 2;
  auto wide_model =
      std::move(core::Traj2Hash::Create(wide, env.corpus, rng).value());
  QueryEngine mismatched(wide_model.get(),
                         WithStrategy(search::SearchStrategy::kMih));
  EXPECT_EQ(mismatched.LoadSnapshot(path).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Replication failover drill (DESIGN.md §13)
// ---------------------------------------------------------------------------

// The FaultInjector kills one replica of a 1-primary/3-replica group in the
// middle of a query burst. The router's retries must route every query in
// the burst to the survivors — zero dropped, zero incorrect — and the dead
// replica, restarted from its own checkpoint, must catch back up to the
// live commit seq even though the primary mutated while it was down.
TEST(RobustnessTest, ReplicationFailoverDrillDropsNothing) {
  Env env = MakeEnv(80);
  QueryEngine engine(env.model.get(), {.num_threads = 1, .num_shards = 3});
  const std::string wal_path = TempPath("failover_drill.wal");
  std::remove(wal_path.c_str());
  ASSERT_TRUE(engine.Recover("", wal_path).ok());
  ASSERT_TRUE(
      engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 60}).ok());

  replica::Primary primary(engine.mutable_index(), wal_path);
  std::vector<std::unique_ptr<replica::Replica>> group;
  std::vector<replica::Replica*> members;
  for (int i = 0; i < 3; ++i) {
    group.push_back(std::make_unique<replica::Replica>(
        &primary, replica::ReplicaOptions{},
        "drill-r" + std::to_string(i)));
    ASSERT_TRUE(group.back()->Bootstrap(TempPath("drill.boot.snap")).ok());
    members.push_back(group.back().get());
  }
  replica::ReadRouter router(members, {.max_attempts = 4});
  const std::string checkpoint = TempPath("drill.r.ckpt");
  ASSERT_TRUE(group[0]->Checkpoint(checkpoint).ok());

  // Kill one replica mid-burst: the 8th routed replica-query dies at entry.
  FaultInjector fi;
  fi.Arm(faults::kReplicaDown, /*skip=*/7, /*fire=*/1);
  FaultInjector::Scope scope(&fi);

  int64_t dropped = 0;
  for (int q = 0; q < 40; ++q) {
    const search::Code code = env.model->HashCode(env.corpus[q % 60]);
    const replica::RoutedRead read = router.Query(code, 10);
    if (!read.status.ok()) {
      ++dropped;
      continue;
    }
    // Correctness under failover: the survivors are caught up (no churn is
    // racing this loop), so every answer must equal the primary's.
    const auto want = engine.index().QueryTopK(code, 10);
    ASSERT_EQ(read.neighbors.size(), want.size()) << "query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(read.neighbors[i].index, want[i].index);
      EXPECT_EQ(read.neighbors[i].distance, want[i].distance);
    }
  }
  EXPECT_EQ(dropped, 0) << "failover must be invisible to callers";
  EXPECT_EQ(router.failovers(), 1);
  EXPECT_EQ(fi.fired(faults::kReplicaDown), 1);

  // Exactly one replica died; find it and bring it back while the primary
  // keeps committing underneath.
  int dead = -1;
  for (int i = 0; i < 3; ++i) {
    if (group[i]->state() == replica::ReplicaState::kDown) {
      ASSERT_EQ(dead, -1) << "only one replica may have died";
      dead = i;
    }
  }
  ASSERT_NE(dead, -1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Insert(env.corpus[60 + (i % 20)]).ok());
  }
  ASSERT_TRUE(group[dead]->Restart(checkpoint).ok());
  EXPECT_EQ(group[dead]->state(), replica::ReplicaState::kHealthy);
  EXPECT_EQ(group[dead]->applied_seq(), primary.committed_seq());
  router.MarkHealthy(dead);

  // The whole group converges: every replica answers like the primary.
  for (auto& r : group) {
    ASSERT_TRUE(r->CatchUp().ok());
  }
  for (int q = 0; q < 8; ++q) {
    const search::Code code = env.model->HashCode(env.corpus[q]);
    const auto want = engine.index().QueryTopK(code, 10);
    for (auto& r : group) {
      const auto got = r->Query(code, 10);
      ASSERT_TRUE(got.ok()) << r->name() << ": " << got.status().ToString();
      ASSERT_EQ(got.value().size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.value()[i].index, want[i].index);
        EXPECT_EQ(got.value()[i].distance, want[i].distance);
      }
    }
  }
}

}  // namespace
}  // namespace traj2hash::serve
