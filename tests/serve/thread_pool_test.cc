#include "serve/thread_pool.h"

#include <atomic>
#include <latch>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace traj2hash::serve {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, RunAllBlocksUntilAllTasksFinish) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  // No sleep/poll: RunAll returning proves completion.
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, RunAllWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});
  EXPECT_EQ(pool.num_threads(), 2);
}

TEST(ThreadPoolTest, WorkSpreadsAcrossWorkers) {
  // As many tasks as workers, each waiting for all of them to have started:
  // the rendezvous can only complete if every worker picked up exactly one
  // task, so the check is deterministic even on a single-core machine.
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::latch all_started(kThreads);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kThreads; ++i) {
    tasks.push_back([&all_started, &mu, &seen] {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      }
      all_started.arrive_and_wait();
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads));
}

TEST(ThreadPoolTest, ConcurrentExternalSubmitters) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&pool, &counter] {
        for (int i = 0; i < 200; ++i) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    // Pool destruction drains everything the submitters queued.
  }
  EXPECT_EQ(counter.load(), 800);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) tasks.push_back([&counter] { ++counter; });
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace traj2hash::serve
