#include "serve/sharded_index.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/trainer.h"
#include "search/code.h"
#include "traj/synthetic.h"

namespace traj2hash::serve {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<core::Traj2Hash> model;
};

Env MakeEnv() {
  Env env;
  Rng rng(17);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, 160, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(core::Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

TEST(ShardedIndexTest, StartsColdAndGrows) {
  ShardedIndex index(4, 8);
  EXPECT_EQ(index.size(), 0);
  EXPECT_EQ(index.num_shards(), 4);
  // Querying an empty index returns no neighbours rather than crashing.
  const search::Code probe = search::PackSigns(std::vector<float>(8, 1.0f));
  EXPECT_TRUE(index.QueryTopK(probe, 3).empty());

  EXPECT_EQ(index.Insert(probe, {}).value(), 0);
  EXPECT_EQ(index.size(), 1);
  const auto hits = index.QueryTopK(probe, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0);
  EXPECT_EQ(hits[0].distance, 0.0);
}

TEST(ShardedIndexTest, RoundRobinAssignsDenseIds) {
  ShardedIndex index(3, 8);
  const search::Code code = search::PackSigns(std::vector<float>(8, -1.0f));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(index.Insert(code, {}).value(), i);
  }
  EXPECT_EQ(index.size(), 10);
}

/// The acceptance-criteria test: for shard counts {1, 4, 8}, the sharded
/// fan-out + merge must return exactly the ids and distances of the
/// single-index `TrajectoryIndex::QueryHamming` path on the same database.
class ShardCountEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardCountEquivalenceTest, MatchesSingleIndexHybrid) {
  const int num_shards = GetParam();
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);

  core::TrajectoryIndex reference(env.model.get());
  reference.AddAll(db);

  ShardedIndex sharded(num_shards, env.model->config().dim);
  for (const traj::Trajectory& t : db) {
    sharded.Insert(env.model->HashCode(t), env.model->Embed(t));
  }

  ThreadPool pool(3);
  for (int q = 120; q < 140; ++q) {
    for (const int k : {1, 5, 17}) {
      const auto expected = reference.QueryHamming(env.corpus[q], k);
      const search::Code code = env.model->HashCode(env.corpus[q]);
      // Serial and pooled fan-out must agree with each other too.
      const auto serial = sharded.QueryTopK(code, k);
      const auto pooled = sharded.QueryTopK(code, k, &pool);
      ASSERT_EQ(serial.size(), expected.size());
      ASSERT_EQ(pooled.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(serial[i].index, expected[i].index);
        EXPECT_DOUBLE_EQ(serial[i].distance, expected[i].distance);
        EXPECT_EQ(pooled[i].index, expected[i].index);
        EXPECT_DOUBLE_EQ(pooled[i].distance, expected[i].distance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountEquivalenceTest,
                         ::testing::Values(1, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shards_" + std::to_string(info.param);
                         });

TEST(ShardedIndexTest, MergeBreaksTiesByGlobalId) {
  // Two shards return candidates at the same distance; the merge must order
  // them by ascending global id regardless of shard order.
  std::vector<std::vector<search::Neighbor>> per_shard = {
      {{7, 1.0}, {9, 2.0}},
      {{2, 1.0}, {3, 2.0}},
  };
  const auto merged = ShardedIndex::MergeTopK(per_shard, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].index, 2);
  EXPECT_EQ(merged[1].index, 7);
  EXPECT_EQ(merged[2].index, 3);
}

TEST(ShardedIndexTest, ConcurrentInsertsAreAllRetrievable) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  ShardedIndex index(4, 8);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&index, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct sign patterns per thread so codes vary.
        std::vector<float> values(8, (t + i) % 2 == 0 ? 1.0f : -1.0f);
        values[t % 8] = -values[t % 8];
        index.Insert(search::PackSigns(values), {});
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(index.size(), kThreads * kPerThread);
  const search::Code probe = search::PackSigns(std::vector<float>(8, 1.0f));
  const auto all = index.QueryTopK(probe, kThreads * kPerThread);
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  // Every id 0..n-1 appears exactly once.
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const auto& n : all) {
    ASSERT_GE(n.index, 0);
    ASSERT_LT(n.index, kThreads * kPerThread);
    EXPECT_FALSE(seen[n.index]);
    seen[n.index] = true;
  }
}

/// Every strategy (brute scan, radius-2 hybrid, MIH) must serve the same
/// merged result for the same sharded database — they are one exact search
/// with different probe mechanics (DESIGN.md §9).
TEST(ShardedIndexTest, StrategiesAreBitIdenticalAcrossShards) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);
  const int bits = env.model->config().dim;
  ShardedIndex brute(3, bits, search::SearchStrategy::kBrute);
  ShardedIndex radius2(3, bits, search::SearchStrategy::kRadius2);
  ShardedIndex mih(3, bits, search::SearchStrategy::kMih);
  for (const traj::Trajectory& t : db) {
    const search::Code code = env.model->HashCode(t);
    brute.Insert(code, {});
    radius2.Insert(code, {});
    mih.Insert(code, {});
  }
  for (int q = 120; q < 135; ++q) {
    const search::Code code = env.model->HashCode(env.corpus[q]);
    for (const int k : {1, 8, 30}) {
      const auto expected = brute.QueryTopK(code, k);
      for (const auto& got : {radius2.QueryTopK(code, k),
                              mih.QueryTopK(code, k)}) {
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(got[i].index, expected[i].index);
          EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
        }
      }
    }
  }
}

/// Concurrent MIH reads against concurrent writers: the TSan acceptance run
/// for the new engine (build with -DT2H_SANITIZE=thread). Readers hold
/// per-shard shared locks while MIH probes its flat tables; results are only
/// sanity-checked (monotone distances) because the database mutates
/// underneath the queries.
TEST(ShardedIndexTest, ConcurrentMihQueriesAndInsertsAreRaceFree) {
  constexpr int kBits = 64;
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kPerThread = 120;
  ShardedIndex index(4, kBits, search::SearchStrategy::kMih);
  Rng seed_rng(123);
  // Pre-load a few entries so early readers always have candidates.
  std::vector<float> values(kBits);
  for (int i = 0; i < 8; ++i) {
    for (float& v : values) v = seed_rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    index.Insert(search::PackSigns(values), {});
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&index, t] {
      Rng rng(1000 + t);
      std::vector<float> v(kBits);
      for (int i = 0; i < kPerThread; ++i) {
        for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
        index.Insert(search::PackSigns(v), {});
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&index, t] {
      Rng rng(2000 + t);
      std::vector<float> v(kBits);
      for (int i = 0; i < kPerThread; ++i) {
        for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
        const auto hits = index.QueryTopK(search::PackSigns(v), 5);
        EXPECT_LE(hits.size(), 5u);
        for (size_t j = 1; j < hits.size(); ++j) {
          EXPECT_LE(hits[j - 1].distance, hits[j].distance);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(index.size(), 8 + kWriters * kPerThread);
}

TEST(ShardedIndexTest, MutationEpochSumsAdvancesAcrossShards) {
  ShardedIndex index(3, 8);
  EXPECT_EQ(index.mutation_epoch(), 0u);
  const search::Code code = search::PackSigns(std::vector<float>(8, 1.0f));

  // Round-robin placement touches every shard; the sum over shards must
  // advance on each Insert / Update / Remove regardless of which shard
  // took it (monotone per-shard components keep the sum monotone, which is
  // what makes epoch-keyed caching sound — see ShardedIndex::mutation_epoch).
  uint64_t epoch = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(index.Insert(code, {}).ok());
    const uint64_t now = index.mutation_epoch();
    EXPECT_GT(now, epoch) << "insert " << i;
    epoch = now;
  }
  ASSERT_TRUE(index.Update(4, code, {}).ok());
  EXPECT_GT(index.mutation_epoch(), epoch);
  epoch = index.mutation_epoch();
  ASSERT_TRUE(index.Remove(2).ok());
  EXPECT_GT(index.mutation_epoch(), epoch);
  epoch = index.mutation_epoch();

  // Queries leave it untouched; a synchronous compaction sweep advances it
  // once per shard that actually rebuilt.
  (void)index.QueryTopK(code, 3);
  EXPECT_EQ(index.mutation_epoch(), epoch);
  index.CompactAll();
  EXPECT_GT(index.mutation_epoch(), epoch);
}

TEST(ShardedIndexTest, EmbeddingRoundTrips) {
  Env env = MakeEnv();
  ShardedIndex index(2, env.model->config().dim);
  const std::vector<float> embedding = env.model->Embed(env.corpus[0]);
  const int id =
      index.Insert(search::PackSigns(embedding), embedding).value();
  EXPECT_EQ(index.EmbeddingOf(id), embedding);
}

}  // namespace
}  // namespace traj2hash::serve
