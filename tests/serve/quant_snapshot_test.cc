// Snapshot format v3 (quantized payload, DESIGN.md §17): a quantize-mode
// index writes int8 values under one global param set; the reader
// dequantizes and re-quantizes per shard. Covered here: the on-disk header
// bytes, the quantize -> quantize round trip (Hamming bit-identity, lattice
// values within the requantization budget), cross-mode loads in both
// directions (v3 into a float index, v2 into a quantize index), and
// corruption handling (kDataLoss, index left empty).
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::serve {
namespace {

constexpr int kBits = 16;
constexpr int kDim = 6;

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

search::Code RandomCode(Rng& rng) {
  std::vector<float> v(kBits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

std::vector<float> RandomEmbedding(Rng& rng) {
  std::vector<float> e(kDim);
  for (float& x : e) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  return e;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A populated quantize-mode index: 30 entries, every 5th without an
/// embedding, ids 3 and 11 removed. Originals returned by-id for tolerance
/// checks.
struct Fixture {
  ShardedIndex index{2,    kBits, search::SearchStrategy::kMih, 0, 64, 0.25,
                     true, kDim};
  std::vector<std::vector<float>> originals;  // by id; empty = none stored
};

// Populates in place: ShardedIndex holds mutexes/atomics, so the fixture
// cannot be returned by value.
void Populate(Fixture* f) {
  Rng rng(610);
  for (int i = 0; i < 30; ++i) {
    std::vector<float> e;
    if (i % 5 != 0) e = RandomEmbedding(rng);
    f->originals.push_back(e);
    EXPECT_EQ(f->index.Insert(RandomCode(rng), e).value(), i);
  }
  EXPECT_TRUE(f->index.Remove(3).ok());
  EXPECT_TRUE(f->index.Remove(11).ok());
}

/// The whole quantize -> save -> load chain moves a stored value at most a
/// few quantization steps (shard lattice -> global lattice -> reloaded
/// shard lattice, each ≤ half a step of ≈ 4/255 at this data range).
constexpr float kLatticeTolerance = 0.05f;

TEST(QuantSnapshotTest, HeaderBytesShowMagicAndVersion3) {
  Fixture f;
  Populate(&f);
  const std::string path = TmpPath("quant_snapshot_header.snap");
  ASSERT_TRUE(f.index.SaveSnapshot(path).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(bytes.substr(0, 8), "T2HSNAP1");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, 3u);
}

TEST(QuantSnapshotTest, RoundTripIntoQuantizeIndex) {
  Fixture f;
  Populate(&f);
  const std::string path = TmpPath("quant_snapshot_roundtrip.snap");
  ASSERT_TRUE(f.index.SaveSnapshot(path).ok());

  // A different shard count on the reader: id-routed placement makes the
  // reloaded index equivalent regardless.
  ShardedIndex reloaded(3, kBits, search::SearchStrategy::kMih, 0, 64, 0.25,
                        true, kDim);
  ASSERT_TRUE(reloaded.LoadSnapshot(path).ok());
  EXPECT_EQ(reloaded.size(), f.index.size());
  EXPECT_EQ(reloaded.live_size(), f.index.live_size());

  // Hamming serving is bit-identical — codes are never quantized.
  Rng probe_rng(611);
  for (int q = 0; q < 12; ++q) {
    const search::Code code = RandomCode(probe_rng);
    const auto want = f.index.QueryTopK(code, 9);
    const auto got = reloaded.QueryTopK(code, 9);
    ASSERT_EQ(got.size(), want.size()) << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].index, want[i].index) << q;
      EXPECT_EQ(got[i].distance, want[i].distance) << q;
    }
  }

  // Embeddings survive within the requantization budget; entries without
  // one stay without one, removed ids stay gone.
  for (int id = 0; id < 30; ++id) {
    const std::vector<float> back = reloaded.EmbeddingOf(id);
    if (id == 3 || id == 11 || f.originals[id].empty()) {
      EXPECT_TRUE(back.empty()) << id;
      continue;
    }
    ASSERT_EQ(back.size(), static_cast<size_t>(kDim)) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_NEAR(back[j], f.originals[id][j], kLatticeTolerance)
          << "id " << id << " dim " << j;
    }
  }

  // The re-rank surface works on the reloaded lattice: querying with a
  // stored original finds its own entry (the lattice error is far below
  // the inter-point spacing of this corpus).
  for (const int id : {1, 7, 22}) {
    const auto top = reloaded.QueryRerankTopK(
        RandomCode(probe_rng), f.originals[id], 1, 10000);
    ASSERT_EQ(top.size(), 1u) << id;
    EXPECT_EQ(top[0].index, id);
  }
  EXPECT_EQ(reloaded.rerank_stats().band_violations, 0u);
}

TEST(QuantSnapshotTest, V3LoadsIntoFloatModeIndex) {
  Fixture f;
  Populate(&f);
  const std::string path = TmpPath("quant_snapshot_to_float.snap");
  ASSERT_TRUE(f.index.SaveSnapshot(path).ok());

  ShardedIndex floats(2, kBits);
  ASSERT_FALSE(floats.quantize());
  ASSERT_TRUE(floats.LoadSnapshot(path).ok());
  EXPECT_EQ(floats.live_size(), f.index.live_size());
  // The float reader keeps the dequantized values verbatim (one lattice
  // hop fewer than the quantize reader).
  for (const int id : {1, 2, 4, 29}) {
    const std::vector<float> back = floats.EmbeddingOf(id);
    ASSERT_EQ(back.size(), static_cast<size_t>(kDim)) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_NEAR(back[j], f.originals[id][j], kLatticeTolerance)
          << "id " << id << " dim " << j;
    }
  }
}

TEST(QuantSnapshotTest, V2FloatWriterLoadsIntoQuantizeIndex) {
  Rng rng(612);
  ShardedIndex floats(2, kBits);
  std::vector<std::vector<float>> originals;
  for (int i = 0; i < 20; ++i) {
    originals.push_back(RandomEmbedding(rng));
    ASSERT_TRUE(floats.Insert(RandomCode(rng), originals.back()).ok());
  }
  const std::string path = TmpPath("float_snapshot_to_quant.snap");
  ASSERT_TRUE(floats.SaveSnapshot(path).ok());
  {
    const std::string bytes = ReadAll(path);
    uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 8, sizeof(version));
    ASSERT_EQ(version, 2u);  // float writers keep emitting v2
  }

  ShardedIndex quantized(2, kBits, search::SearchStrategy::kMih, 0, 64, 0.25,
                         true, kDim);
  ASSERT_TRUE(quantized.LoadSnapshot(path).ok());
  EXPECT_EQ(quantized.live_size(), 20);
  for (int id = 0; id < 20; ++id) {
    const std::vector<float> back = quantized.EmbeddingOf(id);
    ASSERT_EQ(back.size(), static_cast<size_t>(kDim)) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_NEAR(back[j], originals[id][j], kLatticeTolerance)
          << "id " << id << " dim " << j;
    }
  }
}

TEST(QuantSnapshotTest, CorruptionFailsWithDataLossAndEmptyIndex) {
  Fixture f;
  Populate(&f);
  const std::string path = TmpPath("quant_snapshot_corrupt.snap");
  ASSERT_TRUE(f.index.SaveSnapshot(path).ok());
  const std::string good = ReadAll(path);

  // A flipped payload byte and a truncated tail must both fail the CRC.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x40;
  WriteAll(path, flipped);
  {
    ShardedIndex reader(2, kBits, search::SearchStrategy::kMih, 0, 64, 0.25,
                        true, kDim);
    const Status s = reader.LoadSnapshot(path);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.message();
    EXPECT_EQ(reader.size(), 0);
    EXPECT_EQ(reader.live_size(), 0);
  }
  WriteAll(path, good.substr(0, good.size() - 9));
  {
    ShardedIndex reader(2, kBits, search::SearchStrategy::kMih, 0, 64, 0.25,
                        true, kDim);
    EXPECT_EQ(reader.LoadSnapshot(path).code(), StatusCode::kDataLoss);
    EXPECT_EQ(reader.size(), 0);
  }
}

}  // namespace
}  // namespace traj2hash::serve
