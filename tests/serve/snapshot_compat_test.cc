// Cross-version snapshot compatibility: a checked-in legacy v1 snapshot
// (tests/data/snapshot_v1_16bit.snap — dense ids, no next-id watermark)
// must keep loading under the v2 reader, across shard counts, with results
// bit-identical to an index rebuilt from the fixture's documented recipe.
// Guards against the v2 writer evolving in a way that silently drops v1
// readability.
//
// Fixture recipe (the generator is reproducible from this comment alone):
// 40 entries with dense ids 0..39; entry i's 16-bit code is
// PackSigns(sixteen ±1 floats drawn by Rng(77).Bernoulli(0.5), in order);
// its embedding is {i*0.5f, -i*0.25f} when i % 3 == 0, else empty.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::serve {
namespace {

const char* FixturePath() {
  return T2H_TEST_DATA_DIR "/snapshot_v1_16bit.snap";
}

/// Recomputes the fixture's entries from the documented recipe.
struct FixtureEntry {
  search::Code code;
  std::vector<float> embedding;
};
std::vector<FixtureEntry> RecomputeFixture() {
  Rng rng(77);
  std::vector<FixtureEntry> entries;
  for (int i = 0; i < 40; ++i) {
    std::vector<float> signs(16);
    for (float& x : signs) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    FixtureEntry e;
    e.code = search::PackSigns(signs);
    if (i % 3 == 0) {
      e.embedding = {i * 0.5f, -i * 0.25f};
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(SnapshotCompatTest, V1FixtureLoadsUnderV2Reader) {
  ShardedIndex index(3, 16);
  ASSERT_TRUE(index.LoadSnapshot(FixturePath()).ok());
  EXPECT_EQ(index.size(), 40);
  EXPECT_EQ(index.live_size(), 40);
  EXPECT_EQ(index.num_bits(), 16);

  // Every entry must round-trip exactly: codes via a zero-distance self
  // query, embeddings byte-for-byte.
  const std::vector<FixtureEntry> want = RecomputeFixture();
  for (int i = 0; i < 40; ++i) {
    const auto top = index.QueryTopK(want[i].code, 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].distance, 0.0) << "entry " << i;
    EXPECT_EQ(index.EmbeddingOf(i), want[i].embedding) << "entry " << i;
  }
}

TEST(SnapshotCompatTest, V1FixtureIsShardCountIndependent) {
  // The fixture was written by a single-index (pre-sharding) build; the
  // id-routed reader must produce bit-identical results for any shard
  // count. Compare every shard count against a freshly built oracle.
  const std::vector<FixtureEntry> want = RecomputeFixture();
  ShardedIndex oracle(1, 16, search::SearchStrategy::kBrute);
  for (const FixtureEntry& e : want) {
    ASSERT_TRUE(oracle.Insert(e.code, e.embedding).ok());
  }

  Rng probe_rng(123);
  for (const int shards : {1, 3, 4}) {
    ShardedIndex index(shards, 16);
    ASSERT_TRUE(index.LoadSnapshot(FixturePath()).ok())
        << "shards=" << shards;
    for (int q = 0; q < 10; ++q) {
      std::vector<float> signs(16);
      for (float& x : signs) x = probe_rng.Bernoulli(0.5) ? 1.0f : -1.0f;
      const search::Code code = search::PackSigns(signs);
      const auto got = index.QueryTopK(code, 10);
      const auto expect = oracle.QueryTopK(code, 10);
      ASSERT_EQ(got.size(), expect.size()) << "shards=" << shards;
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i].index, expect[i].index);
        EXPECT_EQ(got[i].distance, expect[i].distance);
      }
    }
  }
}

TEST(SnapshotCompatTest, V1LoadStaysMutable) {
  // A legacy snapshot is a full database, not a frozen archive: inserts
  // after the load must take fresh ids above the dense range, and removes
  // of fixture entries must stick.
  ShardedIndex index(4, 16);
  ASSERT_TRUE(index.LoadSnapshot(FixturePath()).ok());
  const std::vector<FixtureEntry> want = RecomputeFixture();
  const auto inserted = index.Insert(want[0].code, {});
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(inserted.value(), 40);  // v1 count seeds the id watermark
  ASSERT_TRUE(index.Remove(7).ok());
  EXPECT_EQ(index.live_size(), 40);  // 40 + 1 insert - 1 remove
}

}  // namespace
}  // namespace traj2hash::serve
