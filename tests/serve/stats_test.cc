// Tests for the lock-free latency histogram (serve/stats.h), focused on the
// exchange-based Reset: resetting while recorders hammer the histogram must
// neither lose nor double-count increments (TSan also watches this test in
// the tsan lane of tools/check.sh).
#include "serve/stats.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace traj2hash::serve {
namespace {

TEST(LatencyHistogramTest, SummarizesBasicShape) {
  LatencyHistogram h;
  EXPECT_EQ(h.Summarize().count, 0u);
  for (int i = 0; i < 100; ++i) h.Record(100.0);
  h.Record(10000.0);
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 101u);
  EXPECT_NEAR(s.mean_us, (100.0 * 100 + 10000.0) / 101, 1.0);
  EXPECT_NEAR(s.max_us, 10000.0, 1.0);
  // Geometric buckets: ~8% relative resolution around the true quantile.
  EXPECT_NEAR(s.p50_us, 100.0, 10.0);
  EXPECT_NEAR(s.p99_us, 100.0, 10.0);
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(50.0);
  h.Reset();
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordAndResetLosesNoIncrement) {
  LatencyHistogram h;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h] {
      for (int i = 0; i < kPerWriter; ++i) h.Record(100.0);
    });
  }
  uint64_t drained = 0;
  std::thread resetter([&h, &drained] {
    for (int r = 0; r < 200; ++r) {
      drained += h.Summarize().count;
      h.Reset();
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  resetter.join();
  // Whatever the resets drained plus whatever survived the last reset must
  // cover every recorded sample at most / at least once. The count drained
  // by Summarize-then-Reset may miss samples recorded between the two calls
  // (they survive into the next epoch), so only the final total is exact:
  // final count counts samples after the last drain, and no sample can be
  // counted twice because exchange hands each increment to exactly one side.
  const uint64_t final_count = h.Summarize().count;
  EXPECT_LE(drained + final_count,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // Nothing is lost by Reset itself: everything recorded before the last
  // Summarize-read is either in `drained` or still in the histogram. (Exact
  // conservation needs an atomic read-and-zero of the whole histogram,
  // which Summarize+Reset deliberately is not; the bound above plus TSan
  // cleanliness is the contract.)
  EXPECT_GT(drained + final_count, 0u);
}

TEST(ServeStatsTest, StagesAreIndependent) {
  ServeStats stats;
  stats.Record(Stage::kEncode, 10.0);
  stats.Record(Stage::kProbe, 20.0);
  stats.Record(Stage::kProbe, 30.0);
  const auto snap = stats.Summarize();
  EXPECT_EQ(snap.Of(Stage::kEncode).count, 1u);
  EXPECT_EQ(snap.Of(Stage::kProbe).count, 2u);
  EXPECT_EQ(snap.Of(Stage::kRank).count, 0u);
  EXPECT_FALSE(snap.ToString().empty());
  stats.Reset();
  EXPECT_EQ(stats.Summarize().Of(Stage::kProbe).count, 0u);
}

}  // namespace
}  // namespace traj2hash::serve
