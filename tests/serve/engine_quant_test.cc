// QueryEngine with the quantized store (DESIGN.md §17): the quantize knob
// must leave Hamming serving bit-identical to a float engine, QueryRerank
// must be exactly the index's QueryRerankTopK plumbing (admission + stats
// on top, nothing else), and quant_stats / QuantJson must surface the
// resident-bytes gauge and the re-ranker counters.
#include "serve/engine.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "search/code.h"
#include "serve/stats.h"
#include "traj/synthetic.h"

namespace traj2hash::serve {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<core::Traj2Hash> model;
};

Env MakeEnv(int count = 160) {
  Env env;
  Rng rng(29);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, count, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(core::Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

TEST(EngineQuantTest, HammingServingIsBitIdenticalToFloatEngine) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);
  QueryEngine floats(env.model.get(), {.num_threads = 3, .num_shards = 4});
  QueryEngine quantized(env.model.get(),
                        {.num_threads = 3, .num_shards = 4, .quantize = true});
  ASSERT_TRUE(floats.InsertAll(db).ok());
  ASSERT_TRUE(quantized.InsertAll(db).ok());

  // Codes are never quantized, so Query is unaffected by the store mode.
  for (int q = 120; q < 140; ++q) {
    const auto want = floats.Query(env.corpus[q], 7);
    const auto got = quantized.Query(env.corpus[q], 7);
    ASSERT_EQ(got.neighbors.size(), want.neighbors.size()) << q;
    for (size_t i = 0; i < want.neighbors.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].index, want.neighbors[i].index) << q;
      EXPECT_EQ(got.neighbors[i].distance, want.neighbors[i].distance) << q;
    }
  }
}

TEST(EngineQuantTest, QueryRerankIsExactlyTheIndexRerankPlumbing) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);
  // rerank_candidates = 0 defaults to max(8·k, 64) per shard.
  QueryEngine engine(env.model.get(),
                     {.num_threads = 3, .num_shards = 4, .quantize = true});
  ASSERT_TRUE(engine.InsertAll(db).ok());

  for (int q = 120; q < 135; ++q) {
    for (const int k : {1, 4, 9}) {
      // The engine embeds, packs signs and fans out — reproduce that here
      // against the index directly.
      const std::vector<float> embedding = env.model->Embed(env.corpus[q]);
      const search::Code code = search::PackSigns(embedding);
      const auto want = engine.index().QueryRerankTopK(
          code, embedding, k, std::max(8 * k, 64));
      const QueryResult got = engine.QueryRerank(env.corpus[q], k);
      ASSERT_TRUE(got.complete);
      ASSERT_EQ(got.neighbors.size(), want.size()) << "q=" << q << " k=" << k;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].index, want[i].index);
        EXPECT_EQ(got.neighbors[i].distance, want[i].distance);
      }
    }
  }
}

TEST(EngineQuantTest, QuantStatsShowTheResidentCutAndCounters) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);
  QueryEngine floats(env.model.get(), {.num_threads = 2, .num_shards = 4});
  QueryEngine quantized(env.model.get(),
                        {.num_threads = 2, .num_shards = 4, .quantize = true});
  ASSERT_TRUE(floats.InsertAll(db).ok());
  ASSERT_TRUE(quantized.InsertAll(db).ok());

  const QuantSnapshot fsnap = floats.quant_stats();
  QuantSnapshot qsnap = quantized.quant_stats();
  EXPECT_FALSE(fsnap.quantize);
  EXPECT_TRUE(qsnap.quantize);
  // Both gauges are live and exact. At this model width (dim 8) the int8
  // rows pad to the same 32 B a float row occupies, so the quantized gauge
  // is only bounded by float + the per-shard param vectors here — the 4×
  // cut is a property of production dims (see the dim-12 live-index test
  // and bench_quant at dim 128), not of the gauge.
  EXPECT_EQ(fsnap.resident_bytes,
            static_cast<uint64_t>(120) * 8 * sizeof(float));
  EXPECT_GT(qsnap.resident_bytes, 0u);
  EXPECT_LE(qsnap.resident_bytes,
            fsnap.resident_bytes + 4u * 3u * 8u * sizeof(float));
  EXPECT_EQ(qsnap.rerank_queries, 0u);

  const int kQueries = 6;
  for (int q = 120; q < 120 + kQueries; ++q) {
    ASSERT_TRUE(quantized.QueryRerank(env.corpus[q], 3).complete);
  }
  qsnap = quantized.quant_stats();
  // Counters sum over shards: one engine query fans out to every shard.
  EXPECT_EQ(qsnap.rerank_queries, static_cast<uint64_t>(kQueries) * 4);
  EXPECT_GT(qsnap.rerank_candidates, 0u);
  EXPECT_GE(qsnap.rechecked, static_cast<uint64_t>(kQueries) * 3);
  EXPECT_EQ(qsnap.band_violations, 0u);
  EXPECT_GT(qsnap.requant_recheck_rate, 0.0);
  EXPECT_LE(qsnap.requant_recheck_rate, 1.0);
}

TEST(EngineQuantTest, QuantJsonCarriesTheDocumentedKeys) {
  Env env = MakeEnv(40);
  QueryEngine engine(env.model.get(),
                     {.num_threads = 2, .num_shards = 2, .quantize = true});
  ASSERT_TRUE(
      engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 30}).ok());
  ASSERT_TRUE(engine.QueryRerank(env.corpus[31], 3).complete);

  const std::string json = QuantJson(engine.quant_stats());
  for (const char* key :
       {"\"quantize\": true", "\"resident_bytes\":", "\"rerank_queries\":",
        "\"rerank_candidates\":", "\"rechecked\":", "\"band_violations\":",
        "\"requant_recheck_rate\":", "\"band_width\":"}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing " << key << " in " << json;
  }
}

TEST(EngineQuantTest, FloatModeRerankSharesTheSameContract) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 100);
  QueryEngine engine(env.model.get(),
                     {.num_threads = 2, .num_shards = 3,
                      .rerank_candidates = 48});
  ASSERT_TRUE(engine.InsertAll(db).ok());
  for (int q = 100; q < 110; ++q) {
    const std::vector<float> embedding = env.model->Embed(env.corpus[q]);
    const search::Code code = search::PackSigns(embedding);
    const auto want =
        engine.index().QueryRerankTopK(code, embedding, 5, 48);
    const QueryResult got = engine.QueryRerank(env.corpus[q], 5);
    ASSERT_EQ(got.neighbors.size(), want.size()) << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].index, want[i].index);
      EXPECT_EQ(got.neighbors[i].distance, want[i].distance);
    }
  }
  EXPECT_FALSE(engine.quant_stats().quantize);
}

}  // namespace
}  // namespace traj2hash::serve
