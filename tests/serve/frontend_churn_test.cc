// The front-end acceptance tests (ISSUE: coalescing + caching): a cached,
// coalescing QueryEngine under live churn must stay bit-identical to a
// brute-force oracle over the logical corpus — deletes take effect
// immediately, no query ever observes results older than its admission
// epoch. Sequential oracle checks run for every (shards, strategy) combo;
// CoalescerCacheChurnStress is the TSan scenario (tools/check.sh tsan lane
// repeats it), using the oracle-at-observed-epoch technique: exactness is
// asserted whenever the mutation epoch did not move across a query.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/code.h"
#include "serve/engine.h"
#include "traj/synthetic.h"

namespace traj2hash::serve {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<core::Traj2Hash> model;
};

Env MakeEnv(int count = 220) {
  Env env;
  Rng rng(23);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, count, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(core::Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

/// Brute-force truth over the live ids' codes, in the repo-wide
/// (distance, id) order — what every engine configuration must reproduce.
std::vector<search::Neighbor> Oracle(
    const std::map<int, search::Code>& live, const search::Code& query,
    int k) {
  std::vector<search::Neighbor> all;
  for (const auto& [id, code] : live) {
    all.push_back(
        {id, static_cast<double>(search::HammingDistance(code, query))});
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

class FrontendChurnTest
    : public ::testing::TestWithParam<
          std::tuple<int, search::SearchStrategy>> {};

INSTANTIATE_TEST_SUITE_P(
    ShardCountsAndStrategies, FrontendChurnTest,
    ::testing::Combine(::testing::Values(1, 4),
                       ::testing::Values(search::SearchStrategy::kBrute,
                                         search::SearchStrategy::kRadius2,
                                         search::SearchStrategy::kMih)));

TEST_P(FrontendChurnTest, CachedResultsMatchBruteForceOracleUnderChurn) {
  const auto [num_shards, strategy] = GetParam();
  Env env = MakeEnv();
  QueryEngine engine(env.model.get(),
                     {.num_threads = 2,
                      .num_shards = num_shards,
                      .strategy = strategy,
                      // Aggressive compaction so base installs (which also
                      // advance the epoch) happen mid-test.
                      .compact_min_ops = 6,
                      .compact_ratio = 0.2,
                      .enable_coalescing = true,
                      .max_batch = 4,
                      .max_wait_us = 100,
                      .cache_entries = 32});
  std::map<int, search::Code> live;
  // A small rotating query set so repeats hit the cache — and churn between
  // repeats forces the stale-drop path.
  const int kQueryPool = 8;
  Rng rng(300 + num_shards);
  int next_corpus = 0;

  for (int step = 0; step < 180; ++step) {
    const double dice = rng.Uniform(0.0, 1.0);
    if ((dice < 0.55 || live.empty()) &&
        next_corpus < static_cast<int>(env.corpus.size())) {
      const traj::Trajectory& t = env.corpus[next_corpus++];
      const Result<int> id = engine.Insert(t);
      ASSERT_TRUE(id.ok());
      live[id.value()] = env.model->HashCode(t);
    } else if (dice < 0.75) {
      const int victim = std::next(live.begin(), step % live.size())->first;
      ASSERT_TRUE(engine.Remove(victim).ok());
      live.erase(victim);
    } else if (dice < 0.95 && next_corpus < static_cast<int>(env.corpus.size())) {
      const int victim = std::next(live.begin(), step % live.size())->first;
      const traj::Trajectory& t = env.corpus[next_corpus++];
      ASSERT_TRUE(engine.Update(victim, t).ok());
      live[victim] = env.model->HashCode(t);
    }

    // The same (query, k) cache key twice per step: the first call misses
    // (churn advanced the epoch) and repopulates, the second usually hits —
    // and a hit must still be oracle-exact. The key cycles with period
    // lcm(kQueryPool, 4) = 8 steps, well inside the cache capacity, so the
    // revisit 8 steps later finds the entry and drops it as stale.
    const traj::Trajectory& query = env.corpus[step % kQueryPool];
    const int k = 1 + step % 4;
    for (int repeat = 0; repeat < 2; ++repeat) {
      const QueryResult got = engine.Query(query, k);
      ASSERT_TRUE(got.status.ok()) << "step " << step;
      const auto want = Oracle(live, env.model->HashCode(query), k);
      ASSERT_EQ(got.neighbors.size(), want.size())
          << "step " << step << " repeat " << repeat;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got.neighbors[i].index, want[i].index)
            << "step " << step << " repeat " << repeat << " rank " << i;
        ASSERT_EQ(got.neighbors[i].distance, want[i].distance)
            << "step " << step << " repeat " << repeat << " rank " << i;
      }
    }
  }

  // The rotating query set must have produced real cache traffic, and the
  // counters must satisfy the schema invariants.
  const FrontendSnapshot fs = engine.frontend_stats();
  EXPECT_TRUE(fs.coalescing);
  EXPECT_TRUE(fs.caching);
  EXPECT_GT(fs.cache_lookups, 0u);
  EXPECT_GT(fs.cache_hits, 0u);
  EXPECT_GT(fs.cache_stale, 0u) << "churn between repeats must drop entries";
  EXPECT_EQ(fs.cache_hits + fs.cache_misses, fs.cache_lookups);
  EXPECT_LE(fs.cache_stale, fs.cache_misses);
  EXPECT_GT(fs.epoch, 0u);
}

/// The TSan stress (tools/check.sh tsan lane repeats this): one mutator
/// churns the engine while reader threads query through the coalescer and
/// the cache. The mutator keeps the logical truth beside the engine under a
/// mutex; a reader snapshots (truth, epoch) before its query and re-reads
/// the epoch after — when the epoch did not move, the engine's answer must
/// equal the oracle's bit for bit (so no reader can ever observe a result
/// older than its admission epoch); when it did, only internal consistency
/// is asserted. A quiesced exact sweep closes the test.
TEST(FrontendStressTest, CoalescerCacheChurnStress) {
  Env env = MakeEnv(400);
  QueryEngine engine(env.model.get(),
                     {.num_threads = 4,
                      .num_shards = 4,
                      .compact_min_ops = 8,
                      .compact_ratio = 0.2,
                      .enable_coalescing = true,
                      .max_batch = 4,
                      .max_wait_us = 200,
                      .cache_entries = 64});

  std::mutex truth_mu;
  std::map<int, search::Code> truth;
  // Seed so early readers have data.
  for (int i = 0; i < 40; ++i) {
    const Result<int> id = engine.Insert(env.corpus[i]);
    ASSERT_TRUE(id.ok());
    truth[id.value()] = env.model->HashCode(env.corpus[i]);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> exact_checks{0};

  std::thread mutator([&] {
    Rng rng(52);
    int next_corpus = 40;
    for (int i = 0; i < 300; ++i) {
      // Breathe between mutations so readers regularly observe a stable
      // epoch — otherwise the exact-check branch would starve.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      const double dice = rng.Uniform(0.0, 1.0);
      std::lock_guard<std::mutex> lock(truth_mu);
      if ((dice < 0.5 || truth.empty()) &&
          next_corpus < static_cast<int>(env.corpus.size())) {
        const traj::Trajectory& t = env.corpus[next_corpus++];
        const Result<int> id = engine.Insert(t);
        if (id.ok()) truth[id.value()] = env.model->HashCode(t);
      } else if (dice < 0.75 && !truth.empty()) {
        const int victim = std::next(truth.begin(), i % truth.size())->first;
        if (engine.Remove(victim).ok()) truth.erase(victim);
      } else if (!truth.empty() &&
                 next_corpus < static_cast<int>(env.corpus.size())) {
        const int victim = std::next(truth.begin(), i % truth.size())->first;
        const traj::Trajectory& t = env.corpus[next_corpus++];
        if (engine.Update(victim, t).ok()) {
          truth[victim] = env.model->HashCode(t);
        }
      }
    }
    stop.store(true, std::memory_order_release);
  });

  // A small hot query pool maximises cache + single-flight contention.
  constexpr int kReaders = 3;
  constexpr int kQueryPool = 6;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(60 + r);
      int q = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const traj::Trajectory& query =
            env.corpus[static_cast<size_t>(q++) % kQueryPool];
        const int k = 1 + q % 7;
        std::map<int, search::Code> snapshot;
        uint64_t epoch_before = 0;
        {
          std::lock_guard<std::mutex> lock(truth_mu);
          snapshot = truth;
          epoch_before = engine.mutation_epoch();
        }
        const QueryResult got = engine.Query(query, k);
        const uint64_t epoch_after = engine.mutation_epoch();
        if (!got.status.ok()) {
          errors.fetch_add(1);
          continue;
        }
        // Internal consistency always: sorted, unique, at most k.
        if (static_cast<int>(got.neighbors.size()) > k) errors.fetch_add(1);
        for (size_t i = 1; i < got.neighbors.size(); ++i) {
          if (!search::NeighborLess(got.neighbors[i - 1], got.neighbors[i])) {
            errors.fetch_add(1);
          }
        }
        if (epoch_after != epoch_before) continue;
        // The epoch held still across the query (mutations and compaction
        // installs both advance it): the answer must equal the oracle over
        // the snapshot — a cached or flight-served result from an older
        // epoch would be caught right here.
        exact_checks.fetch_add(1);
        const auto want =
            Oracle(snapshot, env.model->HashCode(query), k);
        if (got.neighbors.size() != want.size()) {
          errors.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < want.size(); ++i) {
          if (got.neighbors[i].index != want[i].index ||
              got.neighbors[i].distance != want[i].distance) {
            errors.fetch_add(1);
          }
        }
      }
    });
  }

  mutator.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(exact_checks.load(), 0) << "the stress never observed a stable "
                                       "epoch; exactness was not exercised";

  // Quiesced: every pool query must now be exact (and cacheable).
  std::map<int, search::Code> live;
  {
    std::lock_guard<std::mutex> lock(truth_mu);
    live = truth;
  }
  for (int pass = 0; pass < 2; ++pass) {  // second pass serves from cache
    for (int q = 0; q < kQueryPool; ++q) {
      const traj::Trajectory& query = env.corpus[q];
      const QueryResult got = engine.Query(query, 5);
      ASSERT_TRUE(got.status.ok());
      const auto want = Oracle(live, env.model->HashCode(query), 5);
      ASSERT_EQ(got.neighbors.size(), want.size()) << "query " << q;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got.neighbors[i].index, want[i].index);
        ASSERT_EQ(got.neighbors[i].distance, want[i].distance);
      }
    }
  }
  const FrontendSnapshot fs = engine.frontend_stats();
  EXPECT_EQ(fs.cache_hits + fs.cache_misses, fs.cache_lookups);
  EXPECT_LE(fs.cache_stale, fs.cache_misses);
}

}  // namespace
}  // namespace traj2hash::serve
