#include "serve/engine.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/trainer.h"
#include "traj/synthetic.h"

namespace traj2hash::serve {
namespace {

struct Env {
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<core::Traj2Hash> model;
};

Env MakeEnv(int count = 160) {
  Env env;
  Rng rng(23);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  env.corpus = GenerateTrips(city, count, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  env.model = std::move(core::Traj2Hash::Create(cfg, env.corpus, rng).value());
  return env;
}

TEST(QueryEngineTest, ColdStartThenServe) {
  Env env = MakeEnv(40);
  QueryEngine engine(env.model.get(), {.num_threads = 2, .num_shards = 3});
  EXPECT_EQ(engine.size(), 0);
  EXPECT_TRUE(engine.Query(env.corpus[0], 5).neighbors.empty());

  const int id = engine.Insert(env.corpus[0]).value();
  EXPECT_EQ(id, 0);
  const auto result = engine.Query(env.corpus[0], 5);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_EQ(result.neighbors[0].index, 0);
  EXPECT_EQ(result.neighbors[0].distance, 0.0);
}

TEST(QueryEngineTest, MatchesSingleIndexFacade) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);
  core::TrajectoryIndex reference(env.model.get());
  reference.AddAll(db);

  QueryEngine engine(env.model.get(), {.num_threads = 4, .num_shards = 4});
  engine.InsertAll(db);
  ASSERT_EQ(engine.size(), 120);

  const std::vector<traj::Trajectory> queries(env.corpus.begin() + 120,
                                              env.corpus.begin() + 140);
  const auto batched = engine.QueryBatch(queries, 7);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto expected = reference.QueryHamming(queries[q], 7);
    const auto single = engine.Query(queries[q], 7);
    ASSERT_EQ(single.neighbors.size(), expected.size());
    ASSERT_EQ(batched[q].neighbors.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(single.neighbors[i].index, expected[i].index);
      EXPECT_DOUBLE_EQ(single.neighbors[i].distance, expected[i].distance);
      EXPECT_EQ(batched[q].neighbors[i].index, expected[i].index);
      EXPECT_DOUBLE_EQ(batched[q].neighbors[i].distance,
                       expected[i].distance);
    }
  }
}

TEST(QueryEngineTest, RecordsPerStageLatency) {
  Env env = MakeEnv(60);
  QueryEngine engine(env.model.get(), {.num_threads = 2, .num_shards = 2});
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 40});
  engine.ResetStats();

  const int kQueries = 12;
  for (int q = 0; q < kQueries; ++q) engine.Query(env.corpus[q], 5);
  const ServeStats::Snapshot snapshot = engine.stats();
  for (const Stage stage :
       {Stage::kEncode, Stage::kProbe, Stage::kRank, Stage::kTotal}) {
    EXPECT_EQ(snapshot.Of(stage).count, static_cast<uint64_t>(kQueries))
        << StageName(stage);
  }
  // Encoding dominates a query at this scale; the total must be at least
  // the encode mean and every summary must be internally consistent.
  const auto& total = snapshot.Of(Stage::kTotal);
  EXPECT_GE(total.mean_us, snapshot.Of(Stage::kEncode).mean_us);
  EXPECT_LE(total.p50_us, total.p95_us);
  EXPECT_LE(total.p95_us, total.p99_us);
  EXPECT_FALSE(snapshot.ToString().empty());
}

/// The front-end bit-identity contract (DESIGN.md §15): with coalescing and
/// the result cache enabled, Query and QueryBatch must return exactly what a
/// plain engine returns — on the first pass (cold cache, coalesced encode)
/// and the second (served from the cache).
TEST(QueryEngineTest, FrontendIsBitIdenticalToThePlainEngine) {
  Env env = MakeEnv();
  const std::vector<traj::Trajectory> db(env.corpus.begin(),
                                         env.corpus.begin() + 120);
  const std::vector<traj::Trajectory> queries(env.corpus.begin() + 120,
                                              env.corpus.begin() + 140);
  QueryEngine plain(env.model.get(), {.num_threads = 4, .num_shards = 4});
  QueryEngine frontend(env.model.get(), {.num_threads = 4,
                                         .num_shards = 4,
                                         .enable_coalescing = true,
                                         .max_batch = 4,
                                         .max_wait_us = 100,
                                         .cache_entries = 64});
  ASSERT_TRUE(plain.InsertAll(db).ok());
  ASSERT_TRUE(frontend.InsertAll(db).ok());

  const auto expect_identical = [](const QueryResult& got,
                                   const QueryResult& want, size_t q) {
    ASSERT_TRUE(got.status.ok()) << "query " << q;
    ASSERT_EQ(got.neighbors.size(), want.neighbors.size()) << "query " << q;
    for (size_t i = 0; i < want.neighbors.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].index, want.neighbors[i].index)
          << "query " << q << " rank " << i;
      EXPECT_EQ(got.neighbors[i].distance, want.neighbors[i].distance)
          << "query " << q << " rank " << i;
    }
  };

  std::vector<QueryResult> expected;
  for (const traj::Trajectory& q : queries) expected.push_back(plain.Query(q, 7));
  // Pass 1 misses the cache, pass 2 hits it; both must be bit-identical.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t q = 0; q < queries.size(); ++q) {
      expect_identical(frontend.Query(queries[q], 7), expected[q], q);
    }
  }
  // QueryBatch (one EmbedBatch pass; hits served inline) agrees too.
  const auto batched = frontend.QueryBatch(queries, 7);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    expect_identical(batched[q], expected[q], q);
  }

  const FrontendSnapshot fs = frontend.frontend_stats();
  EXPECT_TRUE(fs.coalescing);
  EXPECT_TRUE(fs.caching);
  // Pass 2 and the batch were pure hits: 2 * queries hits, 1 * queries
  // misses, and the schema invariant holds exactly.
  EXPECT_EQ(fs.cache_lookups, 3 * queries.size());
  EXPECT_EQ(fs.cache_hits, 2 * queries.size());
  EXPECT_EQ(fs.cache_misses, queries.size());
  EXPECT_EQ(fs.cache_hits + fs.cache_misses, fs.cache_lookups);
  EXPECT_EQ(fs.cache_stale, 0u);
  EXPECT_EQ(fs.occupancy.queries,
            fs.cache_misses);  // only misses reach the coalescer
}

/// The concurrency invariant test of the ISSUE: writers keep inserting while
/// readers keep querying; every result must be internally consistent (sorted,
/// unique, in-bounds ids) at whatever size the index had mid-flight. Run
/// under -DT2H_SANITIZE=thread this doubles as the TSan scenario.
TEST(QueryEngineTest, ConcurrentInsertAndQueryKeepInvariants) {
  Env env = MakeEnv(200);
  QueryEngine engine(env.model.get(), {.num_threads = 4, .num_shards = 4});
  // Seed the index so early queries have data.
  engine.InsertAll({env.corpus.begin(), env.corpus.begin() + 20});

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kPerWriter = 40;
  constexpr int kPerReader = 30;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, &env, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        engine.Insert(env.corpus[20 + w * kPerWriter + i]);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&engine, &env, &failed, r] {
      for (int i = 0; i < kPerReader; ++i) {
        const int k = 1 + (i % 9);
        const auto result =
            engine.Query(env.corpus[100 + (r * kPerReader + i) % 100], k);
        const auto& hits = result.neighbors;
        if (static_cast<int>(hits.size()) > k) failed = true;
        const int size_after = engine.size();
        for (size_t j = 0; j < hits.size(); ++j) {
          if (hits[j].index < 0 || hits[j].index >= size_after) failed = true;
          if (j > 0 && !search::NeighborLess(hits[j - 1], hits[j])) {
            failed = true;  // strict (distance, id) order implies uniqueness
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(engine.size(), 20 + kWriters * kPerWriter);

  // After the dust settles the engine agrees with a fresh reference index
  // on everything that was inserted (ids differ by insertion race, so only
  // sizes and self-retrieval are checked).
  const auto self = engine.Query(env.corpus[25], 1);
  ASSERT_EQ(self.neighbors.size(), 1u);
  EXPECT_EQ(self.neighbors[0].distance, 0.0);
}

}  // namespace
}  // namespace traj2hash::serve
