// Unit tests for the CRC32-framed write-ahead log (ingest/wal.h): append +
// group-commit sync, replay order, torn-tail truncation vs mid-file
// corruption, poisoning after a failed sync, and reset-after-checkpoint
// semantics. All crash shapes are driven through common::FaultInjector or
// direct byte surgery on the log file — no real crashes, fully
// deterministic.
#include "ingest/wal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "search/code.h"

namespace traj2hash::ingest {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

WalRecord Insert(int id, const search::Code& code,
                 std::vector<float> embedding = {}) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.id = id;
  r.code = code;
  r.embedding = std::move(embedding);
  return r;
}

WalRecord Remove(int id) {
  WalRecord r;
  r.type = WalRecordType::kRemove;
  r.id = id;
  return r;
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  const auto replay = Wal::Replay(TempPath("missing.wal"));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_EQ(replay.value().last_seq, 0u);
  EXPECT_FALSE(replay.value().tail_truncated);
}

TEST(WalTest, AppendSyncReplayRoundTripsEveryField) {
  const std::string path = TempPath("roundtrip.wal");
  Rng rng(7);
  const search::Code a = RandomCode(32, rng);
  const search::Code b = RandomCode(32, rng);
  {
    auto wal = std::move(Wal::Open(path).value());
    ASSERT_TRUE(wal->Append(Insert(0, a, {1.5f, -2.5f})).ok());
    ASSERT_TRUE(wal->Append(Remove(0)).ok());
    WalRecord update;
    update.type = WalRecordType::kUpdate;
    update.id = 3;
    update.code = b;
    ASSERT_TRUE(wal->Append(update).ok());
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_EQ(wal->last_seq(), 3u);
  }
  const WalReplay replay = std::move(Wal::Replay(path).value());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_FALSE(replay.tail_truncated);
  EXPECT_EQ(replay.last_seq, 3u);
  EXPECT_EQ(replay.records[0].seq, 1u);
  EXPECT_EQ(replay.records[0].type, WalRecordType::kInsert);
  EXPECT_EQ(replay.records[0].id, 0);
  EXPECT_EQ(replay.records[0].code, a);
  EXPECT_EQ(replay.records[0].embedding, (std::vector<float>{1.5f, -2.5f}));
  EXPECT_EQ(replay.records[1].type, WalRecordType::kRemove);
  EXPECT_EQ(replay.records[1].id, 0);
  EXPECT_EQ(replay.records[2].type, WalRecordType::kUpdate);
  EXPECT_EQ(replay.records[2].code, b);
  EXPECT_TRUE(replay.records[2].embedding.empty());
}

TEST(WalTest, AppendOnlyBuffersUntilSync) {
  const std::string path = TempPath("buffered.wal");
  Rng rng(8);
  auto wal = std::move(Wal::Open(path).value());
  ASSERT_TRUE(wal->Append(Insert(0, RandomCode(16, rng))).ok());
  // Nothing reached the file yet: a crash here loses only un-acked records.
  EXPECT_EQ(std::move(Wal::Replay(path).value()).records.size(), 0u);
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(std::move(Wal::Replay(path).value()).records.size(), 1u);
}

TEST(WalTest, TornTailIsDetectedAndTruncatedByReopen) {
  const std::string path = TempPath("torn.wal");
  Rng rng(9);
  {
    auto wal = std::move(Wal::Open(path).value());
    ASSERT_TRUE(wal->Append(Insert(0, RandomCode(32, rng))).ok());
    ASSERT_TRUE(wal->Append(Insert(1, RandomCode(32, rng))).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Chop bytes off the final frame: a crash mid-append.
  std::string bytes = std::move(ReadFileToString(path).value());
  const size_t durable = bytes.size();
  {
    auto wal = std::move(Wal::Open(path).value());
    ASSERT_TRUE(wal->Append(Insert(2, RandomCode(32, rng))).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::string grown = std::move(ReadFileToString(path).value());
  grown.resize(durable + (grown.size() - durable) / 2);
  ASSERT_TRUE(AtomicWriteFile(path, grown).ok());

  WalReplay replay;
  auto wal = std::move(Wal::Open(path, &replay).value());
  EXPECT_TRUE(replay.tail_truncated);
  ASSERT_EQ(replay.records.size(), 2u);  // the torn record was never acked
  EXPECT_EQ(replay.valid_bytes, durable);
  // The reopen truncated the torn tail, so appends continue cleanly.
  ASSERT_TRUE(wal->Append(Insert(2, RandomCode(32, rng))).ok());
  ASSERT_TRUE(wal->Sync().ok());
  const WalReplay after = std::move(Wal::Replay(path).value());
  EXPECT_FALSE(after.tail_truncated);
  ASSERT_EQ(after.records.size(), 3u);
  EXPECT_EQ(after.records[2].seq, 3u);
}

TEST(WalTest, MidFileBitFlipIsDataLossNotATornTail) {
  const std::string path = TempPath("bitflip.wal");
  Rng rng(10);
  {
    auto wal = std::move(Wal::Open(path).value());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal->Append(Insert(i, RandomCode(32, rng))).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::string bytes = std::move(ReadFileToString(path).value());
  bytes[bytes.size() / 2] ^= 0x10;  // corrupt an acknowledged record
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
  EXPECT_EQ(Wal::Replay(path).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(Wal::Open(path).status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, InjectedTornAppendPoisonsUntilReopen) {
  const std::string path = TempPath("poison.wal");
  Rng rng(11);
  auto wal = std::move(Wal::Open(path).value());
  ASSERT_TRUE(wal->Append(Insert(0, RandomCode(32, rng))).ok());
  ASSERT_TRUE(wal->Sync().ok());

  FaultInjector fi;
  fi.Arm(faults::kWalAppend, /*skip=*/0, /*fire=*/1);
  {
    FaultInjector::Scope scope(&fi);
    ASSERT_TRUE(wal->Append(Insert(1, RandomCode(32, rng))).ok());
    EXPECT_EQ(wal->Sync().code(), StatusCode::kIoError);
  }
  EXPECT_EQ(fi.fired(faults::kWalAppend), 1);
  // Poisoned: every further use refuses until a reopen recovers the file.
  EXPECT_EQ(wal->Append(Remove(0)).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->Sync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->Reset().code(), StatusCode::kFailedPrecondition);
  wal.reset();

  // The reopen drops the half-written frame; only the acked record remains.
  WalReplay replay;
  auto reopened = std::move(Wal::Open(path, &replay).value());
  EXPECT_TRUE(replay.tail_truncated);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].id, 0);
  ASSERT_TRUE(reopened->Append(Insert(1, RandomCode(32, rng))).ok());
  ASSERT_TRUE(reopened->Sync().ok());
}

TEST(WalTest, ResetEmptiesTheLogButSequenceNumbersKeepCounting) {
  const std::string path = TempPath("reset.wal");
  Rng rng(12);
  auto wal = std::move(Wal::Open(path).value());
  ASSERT_TRUE(wal->Append(Insert(0, RandomCode(32, rng))).ok());
  ASSERT_TRUE(wal->Append(Insert(1, RandomCode(32, rng))).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->size_bytes(), 0u);
  ASSERT_TRUE(wal->Append(Insert(2, RandomCode(32, rng))).ok());
  ASSERT_TRUE(wal->Sync().ok());
  const WalReplay replay = std::move(Wal::Replay(path).value());
  ASSERT_EQ(replay.records.size(), 1u);
  // Seqs never restart, so a record can never be mistaken for a pre-reset
  // one; replay accepts the gap because the log starts fresh.
  EXPECT_EQ(replay.records[0].seq, 3u);
  EXPECT_EQ(replay.records[0].id, 2);
}

TEST(WalTest, CompleteFrameWithBadChecksumIsDataLoss) {
  const std::string path = TempPath("garbage.wal");
  // A structurally complete frame (the declared length fits the buffer)
  // whose checksum is wrong: mid-file corruption, not a torn tail.
  std::string bytes;
  const uint32_t len = 4;
  const uint32_t bogus_crc = 0xDEADBEEFu;
  bytes.append(reinterpret_cast<const char*>(&len), sizeof(len));
  bytes.append(reinterpret_cast<const char*>(&bogus_crc), sizeof(bogus_crc));
  bytes.append("abcd", 4);
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
  EXPECT_EQ(Wal::Replay(path).status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, DeclaredFrameLargerThanTheFileIsATornTail) {
  const std::string path = TempPath("oversized.wal");
  // The length prefix promises more bytes than exist — exactly what a crash
  // after writing only the header looks like. Clean replay, zero records.
  std::string bytes(6, '\x7f');
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
  const WalReplay replay = std::move(Wal::Replay(path).value());
  EXPECT_TRUE(replay.tail_truncated);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
}

}  // namespace
}  // namespace traj2hash::ingest
