// Unit tests for the WAL tail-reader cursor (ingest::WalCursor), the
// shipping side of replication: incremental polls see exactly the durable
// prefix, a torn tail stops the walk without error and is re-read once the
// frame completes, mid-file corruption is kDataLoss, a log reset
// (Wal::Reset) surfaces as kFailedPrecondition and is survivable with
// Rewind, and the kReplicaShip fault point fails a poll without moving the
// cursor.
#include "ingest/wal.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "search/code.h"

namespace traj2hash::ingest {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

WalRecord Insert(int id, const search::Code& code,
                 std::vector<float> embedding = {}) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.id = id;
  r.code = code;
  r.embedding = std::move(embedding);
  return r;
}

/// Appends `n` insert records (ids starting at `first_id`) and syncs.
void CommitInserts(Wal* wal, int first_id, int n, Rng& rng) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(wal->Append(Insert(first_id + i, RandomCode(16, rng))).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());
}

TEST(WalCursorTest, MissingFileIsAnEmptyLog) {
  WalCursor cursor(TempPath("cursor_missing.wal"));
  std::vector<WalRecord> out;
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cursor.last_seq(), 0u);
  EXPECT_EQ(cursor.offset(), 0u);
}

TEST(WalCursorTest, PollSeesEachCommitIncrementally) {
  const std::string path = TempPath("cursor_incremental.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  WalCursor cursor(path);
  std::vector<WalRecord> out;

  CommitInserts(wal.get(), 0, 3, rng);
  ASSERT_TRUE(cursor.Poll(&out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.front().seq, 1u);
  EXPECT_EQ(cursor.last_seq(), 3u);

  // Nothing new: a poll is a no-op, not an error.
  out.clear();
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_TRUE(out.empty());

  CommitInserts(wal.get(), 3, 2, rng);
  ASSERT_TRUE(cursor.Poll(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front().seq, 4u);
  EXPECT_EQ(out.back().seq, 5u);
  EXPECT_EQ(cursor.last_seq(), 5u);
  EXPECT_EQ(cursor.offset(), wal->size_bytes());
}

TEST(WalCursorTest, UnsyncedAppendsAreInvisible) {
  const std::string path = TempPath("cursor_unsynced.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  ASSERT_TRUE(wal->Append(Insert(0, RandomCode(16, rng))).ok());
  // Append without Sync: nothing is durable, so the cursor sees nothing.
  WalCursor cursor(path);
  std::vector<WalRecord> out;
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(WalCursorTest, TornTailStopsWithoutErrorAndRereadsWhenComplete) {
  const std::string path = TempPath("cursor_torn.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  WalCursor cursor(path);
  std::vector<WalRecord> out;
  CommitInserts(wal.get(), 0, 2, rng);
  ASSERT_TRUE(cursor.Poll(&out).ok());
  ASSERT_EQ(out.size(), 2u);

  // A torn frame at the tail — as an in-progress append or a crashed
  // primary would leave — must stop the walk silently, not fail it.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const char torn[] = "\xff\xff\x00\x00garbage";
    f.write(torn, sizeof(torn) - 1);
  }
  out.clear();
  const uint64_t offset_before = cursor.offset();
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cursor.offset(), offset_before);
  EXPECT_EQ(cursor.last_seq(), 2u);
}

TEST(WalCursorTest, MidFileCorruptionIsDataLoss) {
  const std::string path = TempPath("cursor_corrupt.wal");
  Rng rng(7);
  {
    auto wal = std::move(Wal::Open(path).value());
    CommitInserts(wal.get(), 0, 4, rng);
  }
  // Flip one payload byte in the middle of the file: a complete frame whose
  // checksum no longer matches is corrupted acknowledged data.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    char byte;
    f.seekg(20);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(20);
    f.write(&byte, 1);
  }
  WalCursor cursor(path);
  std::vector<WalRecord> out;
  EXPECT_EQ(cursor.Poll(&out).code(), StatusCode::kDataLoss);
}

TEST(WalCursorTest, ResetSurfacesAsFailedPreconditionAndRewindRecovers) {
  const std::string path = TempPath("cursor_reset.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  WalCursor cursor(path);
  std::vector<WalRecord> out;
  CommitInserts(wal.get(), 0, 3, rng);
  ASSERT_TRUE(cursor.Poll(&out).ok());
  ASSERT_EQ(cursor.last_seq(), 3u);

  // Checkpoint on the primary: the log is emptied but seqs keep counting.
  ASSERT_TRUE(wal->Reset().ok());
  CommitInserts(wal.get(), 3, 2, rng);  // seqs 4, 5

  out.clear();
  EXPECT_EQ(cursor.Poll(&out).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(out.empty());

  // The cursor was caught up at the reset, so a rewind loses nothing: the
  // new log's records continue the seq sequence it already has.
  cursor.Rewind();
  ASSERT_TRUE(cursor.Poll(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front().seq, 4u);
  EXPECT_EQ(out.back().seq, 5u);
  EXPECT_EQ(cursor.last_seq(), 5u);
}

TEST(WalCursorTest, RewindSkipsRecordsAlreadyReturned) {
  const std::string path = TempPath("cursor_rewind_skip.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  WalCursor cursor(path);
  std::vector<WalRecord> out;
  CommitInserts(wal.get(), 0, 3, rng);
  ASSERT_TRUE(cursor.Poll(&out).ok());
  ASSERT_EQ(out.size(), 3u);

  // Rewind without a reset: the seq watermark suppresses duplicates.
  cursor.Rewind();
  out.clear();
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cursor.last_seq(), 3u);
}

TEST(WalCursorTest, SequenceGapIsDataLoss) {
  const std::string path = TempPath("cursor_gap.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  WalCursor cursor(path);
  std::vector<WalRecord> out;
  CommitInserts(wal.get(), 0, 2, rng);
  ASSERT_TRUE(cursor.Poll(&out).ok());

  // A reset followed by more commits than the cursor ever saw would leave a
  // contiguous sequence; fake a *gap* instead by resetting twice with an
  // unseen commit in between — the rewound cursor then finds records whose
  // seqs skip past its watermark + 1.
  ASSERT_TRUE(wal->Reset().ok());
  CommitInserts(wal.get(), 2, 1, rng);  // seq 3, never polled
  ASSERT_TRUE(wal->Reset().ok());
  CommitInserts(wal.get(), 3, 1, rng);  // seq 4
  cursor.Rewind();
  out.clear();
  EXPECT_EQ(cursor.Poll(&out).code(), StatusCode::kDataLoss);
}

TEST(WalCursorTest, ShipFaultFailsPollWithoutMovingTheCursor) {
  const std::string path = TempPath("cursor_fault.wal");
  Rng rng(7);
  auto wal = std::move(Wal::Open(path).value());
  WalCursor cursor(path);
  CommitInserts(wal.get(), 0, 2, rng);

  FaultInjector fi;
  fi.Arm(faults::kReplicaShip, /*skip=*/0, /*fire=*/1);
  FaultInjector::Scope scope(&fi);
  std::vector<WalRecord> out;
  EXPECT_EQ(cursor.Poll(&out).code(), StatusCode::kIoError);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cursor.offset(), 0u);
  // The transport recovered: the next poll resumes exactly where the failed
  // one would have started.
  ASSERT_TRUE(cursor.Poll(&out).ok());
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace traj2hash::ingest
