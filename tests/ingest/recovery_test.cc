// Crash-recovery acceptance tests (ISSUE: durability): after a simulated
// kill at every armed fault point — torn WAL append, crash between the
// durable append and the in-memory apply, crash mid-compaction, failed
// checkpoint rename — recovery must restore every acknowledged write and
// must never resurrect a removed entry. Crashes are simulated by dropping
// the in-memory ShardedIndex and re-running Recover over the on-disk
// snapshot + WAL, which is exactly what a restarted process does.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::serve {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

/// Gathers the full live state {id -> code} straight from the shards.
std::map<int, search::Code> LiveState(const ShardedIndex& index) {
  std::map<int, search::Code> live;
  for (int s = 0; s < index.num_shards(); ++s) {
    for (const auto& entry : index.shard(s).SnapshotEntries()) {
      live[entry.id] = entry.code;
    }
  }
  return live;
}

void ExpectSameState(const ShardedIndex& recovered,
                     const std::map<int, search::Code>& want,
                     int want_watermark) {
  EXPECT_EQ(LiveState(recovered), want);
  EXPECT_EQ(recovered.size(), want_watermark)
      << "the id watermark must survive recovery so ids are never reused";
}

TEST(RecoveryTest, WalOnlyRecoveryRestoresEveryAcknowledgedMutation) {
  const std::string wal = TempPath("recover1.wal");
  Rng rng(81);
  std::map<int, search::Code> acked;
  int watermark = 0;
  {
    ShardedIndex index(3, 32);
    ASSERT_TRUE(index.AttachWal(wal).ok());
    for (int i = 0; i < 40; ++i) {
      const search::Code code = RandomCode(32, rng);
      const Result<int> id = index.Insert(code, {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = code;
    }
    for (int i = 0; i < 40; i += 4) {
      ASSERT_TRUE(index.Remove(i).ok());
      acked.erase(i);
    }
    for (int i = 1; i < 40; i += 8) {
      const search::Code code = RandomCode(32, rng);
      ASSERT_TRUE(index.Update(i, code, {}).ok());
      acked[i] = code;
    }
    watermark = index.size();
    // No checkpoint, no clean shutdown: the WAL is the only durable state.
  }
  // Recover into a different shard count — ids route by id, not by history.
  ShardedIndex recovered(4, 32);
  ASSERT_TRUE(recovered.Recover("", wal).ok());
  ExpectSameState(recovered, acked, watermark);
  EXPECT_TRUE(recovered.wal_attached());
  // Recovery leaves the log writable: new mutations append after replay.
  ASSERT_TRUE(recovered.Insert(RandomCode(32, rng), {}).ok());
  EXPECT_EQ(recovered.size(), watermark + 1);
}

TEST(RecoveryTest, SnapshotPlusWalTailRecoversAndReplayIsIdempotent) {
  const std::string wal = TempPath("recover2.wal");
  const std::string snapshot = TempPath("recover2.snap");
  Rng rng(82);
  std::map<int, search::Code> acked;
  int watermark = 0;
  std::string pre_checkpoint_wal_bytes;
  {
    ShardedIndex index(2, 32);
    ASSERT_TRUE(index.AttachWal(wal).ok());
    for (int i = 0; i < 20; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    ASSERT_TRUE(index.Remove(3).ok());
    acked.erase(3);
    // Keep the pre-checkpoint log around to simulate a crash BETWEEN
    // SaveSnapshot and Wal::Reset inside Checkpoint.
    pre_checkpoint_wal_bytes = std::move(ReadFileToString(wal).value());
    ASSERT_TRUE(index.Checkpoint(snapshot).ok());
    EXPECT_EQ(std::move(ReadFileToString(wal).value()).size(), 0u)
        << "checkpoint resets the log";
    // Post-checkpoint tail: more mutations land only in the fresh WAL.
    for (int i = 0; i < 10; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    ASSERT_TRUE(index.Remove(25).ok());
    acked.erase(25);
    watermark = index.size();
  }
  {
    ShardedIndex recovered(2, 32);
    ASSERT_TRUE(recovered.Recover(snapshot, wal).ok());
    ExpectSameState(recovered, acked, watermark);
  }
  // The crash-between-checkpoint-steps shape: snapshot written, log NOT yet
  // reset. Replaying the full pre-checkpoint log over the snapshot must
  // converge to the checkpoint state (upsert/tolerant-remove idempotence),
  // not double-apply or resurrect id 3.
  const std::string stale_wal = TempPath("recover2_stale.wal");
  ASSERT_TRUE(AtomicWriteFile(stale_wal, pre_checkpoint_wal_bytes).ok());
  ShardedIndex converged(2, 32);
  ASSERT_TRUE(converged.Recover(snapshot, stale_wal).ok());
  auto live = LiveState(converged);
  EXPECT_EQ(live.count(3), 0u) << "a removed entry must stay removed";
  EXPECT_EQ(static_cast<int>(live.size()), 20 - 1)
      << "snapshot state + an already-applied log prefix = snapshot state";
}

TEST(RecoveryTest, TornWalAppendLosesOnlyTheUnacknowledgedWrite) {
  const std::string wal = TempPath("recover3.wal");
  Rng rng(83);
  std::map<int, search::Code> acked;
  int watermark = 0;
  {
    ShardedIndex index(2, 32);
    ASSERT_TRUE(index.AttachWal(wal).ok());
    for (int i = 0; i < 10; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    watermark = index.size();
    FaultInjector fi;
    fi.Arm(faults::kWalAppend, /*skip=*/0, /*fire=*/1);
    FaultInjector::Scope scope(&fi);
    // The append tears mid-write: the insert fails, is NOT acknowledged,
    // and no id is consumed.
    const Result<int> failed = index.Insert(RandomCode(32, rng), {});
    EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
    EXPECT_EQ(fi.fired(faults::kWalAppend), 1);
    EXPECT_EQ(index.size(), watermark) << "a failed insert burns no id";
  }
  ShardedIndex recovered(2, 32);
  ASSERT_TRUE(recovered.Recover("", wal).ok())
      << "the torn tail is truncated, not fatal";
  ExpectSameState(recovered, acked, watermark);
}

TEST(RecoveryTest, CrashBetweenDurableAppendAndApplyReplaysTheRecord) {
  const std::string wal = TempPath("recover4.wal");
  Rng rng(84);
  std::map<int, search::Code> acked;
  {
    ShardedIndex index(2, 32);
    ASSERT_TRUE(index.AttachWal(wal).ok());
    for (int i = 0; i < 6; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    FaultInjector fi;
    fi.Arm(faults::kWalApply, /*skip=*/0, /*fire=*/1);
    FaultInjector::Scope scope(&fi);
    // Durably logged, then the "process dies" before the in-memory apply:
    // the caller sees an error (un-acked), but the record IS in the log.
    const search::Code phantom = RandomCode(32, rng);
    const Result<int> failed = index.Insert(phantom, {});
    EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
    EXPECT_EQ(fi.fired(faults::kWalApply), 1);
    // Like any write racing a real crash, either outcome is legal after
    // recovery; this implementation's contract is that a durable record is
    // always replayed, so the phantom MUST appear. Record it as id 6 (ids
    // are assigned in WAL order).
    acked[6] = phantom;
  }
  ShardedIndex recovered(2, 32);
  ASSERT_TRUE(recovered.Recover("", wal).ok());
  EXPECT_EQ(LiveState(recovered), acked);
  EXPECT_EQ(recovered.size(), 7) << "the durable id is consumed forever";
}

TEST(RecoveryTest, CrashMidCompactionLosesNothing) {
  const std::string wal = TempPath("recover5.wal");
  Rng rng(85);
  std::map<int, search::Code> acked;
  int watermark = 0;
  {
    ShardedIndex index(2, 32, search::SearchStrategy::kMih,
                       /*mih_substrings=*/0,
                       /*compact_min_ops=*/4, /*compact_ratio=*/0.1);
    ASSERT_TRUE(index.AttachWal(wal).ok());
    for (int i = 0; i < 24; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    for (int i = 0; i < 24; i += 3) {
      ASSERT_TRUE(index.Remove(i).ok());
      acked.erase(i);
    }
    watermark = index.size();
    FaultInjector fi;
    fi.Arm(faults::kCompactionInstall);
    FaultInjector::Scope scope(&fi);
    // The compacting "thread dies" just before every install: the rebuilt
    // bases are abandoned. Compaction is purely in-memory, so the WAL (and
    // thus recovery) cannot be affected — and the live index keeps serving.
    index.CompactAll();
    EXPECT_GT(fi.fired(faults::kCompactionInstall), 0);
    EXPECT_EQ(LiveState(index), acked);
  }
  ShardedIndex recovered(2, 32);
  ASSERT_TRUE(recovered.Recover("", wal).ok());
  ExpectSameState(recovered, acked, watermark);
}

TEST(RecoveryTest, FailedCheckpointRenameLeavesOldSnapshotAndFullWal) {
  const std::string wal = TempPath("recover6.wal");
  const std::string snapshot = TempPath("recover6.snap");
  Rng rng(86);
  std::map<int, search::Code> acked;
  int watermark = 0;
  {
    ShardedIndex index(2, 32);
    ASSERT_TRUE(index.AttachWal(wal).ok());
    for (int i = 0; i < 8; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    ASSERT_TRUE(index.Checkpoint(snapshot).ok());
    for (int i = 0; i < 8; ++i) {
      const Result<int> id = index.Insert(RandomCode(32, rng), {});
      ASSERT_TRUE(id.ok());
      acked[id.value()] = LiveState(index)[id.value()];
    }
    watermark = index.size();
    FaultInjector fi;
    fi.Arm(faults::kFileRename, /*skip=*/0, /*fire=*/1);
    FaultInjector::Scope scope(&fi);
    // The checkpoint's atomic rename fails: the old snapshot survives
    // untouched AND the WAL must NOT be reset (its records are still the
    // only durable copy of the post-checkpoint inserts).
    EXPECT_EQ(index.Checkpoint(snapshot).code(), StatusCode::kIoError);
    EXPECT_GT(std::move(ReadFileToString(wal).value()).size(), 0u)
        << "a failed snapshot must not reset the log";
  }
  ShardedIndex recovered(2, 32);
  ASSERT_TRUE(recovered.Recover(snapshot, wal).ok());
  ExpectSameState(recovered, acked, watermark);
}

TEST(RecoveryTest, SnapshotV2PreservesTombstonesWithoutAWal) {
  const std::string snapshot = TempPath("recover7.snap");
  Rng rng(87);
  ShardedIndex index(3, 32);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(index.Insert(RandomCode(32, rng), {}).ok());
  }
  ASSERT_TRUE(index.Remove(5).ok());
  ASSERT_TRUE(index.Remove(11).ok());
  const auto want = LiveState(index);
  ASSERT_TRUE(index.SaveSnapshot(snapshot).ok());

  ShardedIndex restored(3, 32);
  ASSERT_TRUE(restored.LoadSnapshot(snapshot).ok());
  EXPECT_EQ(LiveState(restored), want);
  EXPECT_FALSE(restored.shard(5 % 3).Contains(5))
      << "a tombstoned id must not be resurrected by a reload";
  EXPECT_EQ(restored.size(), 12)
      << "the watermark covers removed ids, so new inserts cannot reuse 11";
  const Result<int> next = restored.Insert(RandomCode(32, rng), {});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 12);
}

TEST(RecoveryTest, RecoverRequiresAnEmptyIndexAndNoAttachedWal) {
  const std::string wal = TempPath("recover8.wal");
  Rng rng(88);
  ShardedIndex index(2, 32);
  ASSERT_TRUE(index.AttachWal(wal).ok());
  EXPECT_EQ(index.AttachWal(wal).code(), StatusCode::kFailedPrecondition);
  ShardedIndex filled(2, 32);
  ASSERT_TRUE(filled.Insert(RandomCode(32, rng), {}).ok());
  EXPECT_EQ(filled.AttachWal(TempPath("recover8b.wal")).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace traj2hash::serve
