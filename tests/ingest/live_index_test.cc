// Unit tests for ingest::LiveIndex (base + delta + tombstones): mutation
// semantics, exact top-k against a brute-force oracle over the logical
// corpus across every strategy, compaction (trigger, equivalence, the
// abandoned-install fault) and the replay-idempotent Upsert /
// RemoveIfPresent pair.
#include "ingest/live_index.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "search/code.h"

namespace traj2hash::ingest {
namespace {

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

LiveIndexOptions Options(search::SearchStrategy strategy, int bits = 32) {
  LiveIndexOptions options;
  options.num_bits = bits;
  options.strategy = strategy;
  return options;
}

/// The ground truth: brute-force top-k over the live entries, ranked by the
/// repo-wide (distance, id) order.
std::vector<search::Neighbor> Oracle(
    const std::map<int, search::Code>& live, const search::Code& query,
    int k) {
  std::vector<search::Neighbor> all;
  for (const auto& [id, code] : live) {
    all.push_back({id, static_cast<double>(HammingDistance(code, query))});
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

void ExpectIdentical(const std::vector<search::Neighbor>& got,
                     const std::vector<search::Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;
  }
}

class LiveIndexStrategyTest
    : public ::testing::TestWithParam<search::SearchStrategy> {};

INSTANTIATE_TEST_SUITE_P(AllStrategies, LiveIndexStrategyTest,
                         ::testing::Values(search::SearchStrategy::kBrute,
                                           search::SearchStrategy::kRadius2,
                                           search::SearchStrategy::kMih));

TEST_P(LiveIndexStrategyTest, MutationsTrackABruteForceOracle) {
  Rng rng(31);
  LiveIndex index(Options(GetParam()));
  std::map<int, search::Code> live;
  // Interleave inserts, removes, updates and occasional forced compactions,
  // checking exactness at every step.
  for (int step = 0; step < 120; ++step) {
    const double dice = rng.Uniform(0.0, 1.0);
    if (dice < 0.55 || live.empty()) {
      const int id = step;
      const search::Code code = RandomCode(32, rng);
      ASSERT_TRUE(index.Insert(id, code, {}).ok());
      live[id] = code;
    } else if (dice < 0.75) {
      const int victim = std::next(live.begin(), step % live.size())->first;
      ASSERT_TRUE(index.Remove(victim).ok());
      live.erase(victim);
    } else if (dice < 0.95) {
      const int victim = std::next(live.begin(), step % live.size())->first;
      const search::Code code = RandomCode(32, rng);
      ASSERT_TRUE(index.Update(victim, code, {}).ok());
      live[victim] = code;
    } else {
      index.Compact();
      EXPECT_EQ(index.tombstone_count(), 0);
    }
    ASSERT_EQ(index.live_size(), static_cast<int>(live.size()));
    const search::Code query = RandomCode(32, rng);
    ExpectIdentical(index.TopK(query, 5), Oracle(live, query, 5));
  }
  // And once more after a final compaction folds everything into the base.
  index.Compact();
  const search::Code query = RandomCode(32, rng);
  ExpectIdentical(index.TopK(query, 10), Oracle(live, query, 10));
}

TEST(LiveIndexTest, MutationErrorTaxonomy) {
  Rng rng(32);
  LiveIndex index(Options(search::SearchStrategy::kMih));
  const search::Code code = RandomCode(32, rng);
  ASSERT_TRUE(index.Insert(7, code, {1.0f}).ok());
  EXPECT_EQ(index.Insert(7, code, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Remove(8).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.Update(8, code, {}).code(), StatusCode::kNotFound);
  ASSERT_TRUE(index.Remove(7).ok());
  EXPECT_EQ(index.Remove(7).code(), StatusCode::kNotFound);
  EXPECT_FALSE(index.Contains(7));
  EXPECT_TRUE(index.EmbeddingOf(7).empty());
}

TEST(LiveIndexTest, EmbeddingsSurviveUpdateAndCompaction) {
  Rng rng(33);
  LiveIndex index(Options(search::SearchStrategy::kRadius2));
  ASSERT_TRUE(index.Insert(0, RandomCode(32, rng), {1.0f, 2.0f}).ok());
  ASSERT_TRUE(index.Insert(1, RandomCode(32, rng), {3.0f}).ok());
  ASSERT_TRUE(index.Update(0, RandomCode(32, rng), {4.0f}).ok());
  EXPECT_EQ(index.EmbeddingOf(0), (std::vector<float>{4.0f}));
  index.Compact();
  EXPECT_EQ(index.EmbeddingOf(0), (std::vector<float>{4.0f}));
  EXPECT_EQ(index.EmbeddingOf(1), (std::vector<float>{3.0f}));
}

TEST(LiveIndexTest, CompactionTriggerNeedsBothGates) {
  Rng rng(34);
  LiveIndexOptions options = Options(search::SearchStrategy::kMih);
  options.compact_min_ops = 8;
  options.compact_ratio = 0.25;
  LiveIndex index(options);
  // 7 delta rows: below min_ops, no trigger even at 100% ratio.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(index.Insert(i, RandomCode(32, rng), {}).ok());
  }
  EXPECT_FALSE(index.NeedsCompaction());
  ASSERT_TRUE(index.Insert(7, RandomCode(32, rng), {}).ok());
  EXPECT_TRUE(index.NeedsCompaction());
  ASSERT_TRUE(index.ClaimCompaction());
  EXPECT_FALSE(index.ClaimCompaction()) << "single-flight";
  index.RunClaimedCompaction();
  EXPECT_EQ(index.delta_size(), 0);
  EXPECT_EQ(index.compactions_run(), 1);
  // Everything now sits in the base: 8 live rows, 0 pending ops.
  EXPECT_FALSE(index.NeedsCompaction());
}

TEST(LiveIndexTest, AbandonedCompactionInstallKeepsServingUnchanged) {
  Rng rng(35);
  LiveIndex index(Options(search::SearchStrategy::kMih));
  std::map<int, search::Code> live;
  for (int i = 0; i < 30; ++i) {
    const search::Code code = RandomCode(32, rng);
    ASSERT_TRUE(index.Insert(i, code, {}).ok());
    live[i] = code;
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Remove(i * 3).ok());
    live.erase(i * 3);
  }
  FaultInjector fi;
  fi.Arm(faults::kCompactionInstall, /*skip=*/0, /*fire=*/1);
  {
    FaultInjector::Scope scope(&fi);
    index.Compact();  // the rebuilt base is thrown away before the swap
  }
  EXPECT_EQ(fi.fired(faults::kCompactionInstall), 1);
  EXPECT_EQ(index.compactions_run(), 0);
  EXPECT_GT(index.tombstone_count(), 0) << "nothing was installed";
  const search::Code query = RandomCode(32, rng);
  ExpectIdentical(index.TopK(query, 8), Oracle(live, query, 8));
  // The abandoned claim was released: a later compaction goes through.
  index.Compact();
  EXPECT_EQ(index.compactions_run(), 1);
  EXPECT_EQ(index.tombstone_count(), 0);
  ExpectIdentical(index.TopK(query, 8), Oracle(live, query, 8));
}

TEST(LiveIndexTest, UpsertAndRemoveIfPresentAreReplayIdempotent) {
  Rng rng(36);
  LiveIndex index(Options(search::SearchStrategy::kBrute));
  const search::Code first = RandomCode(32, rng);
  const search::Code second = RandomCode(32, rng);
  index.Upsert(5, first, {1.0f});
  index.Upsert(5, second, {2.0f});  // replay over an applied prefix
  EXPECT_EQ(index.live_size(), 1);
  EXPECT_EQ(index.EmbeddingOf(5), (std::vector<float>{2.0f}));
  EXPECT_TRUE(index.RemoveIfPresent(5));
  EXPECT_FALSE(index.RemoveIfPresent(5));  // already gone: no-op, no error
  EXPECT_EQ(index.live_size(), 0);
  index.Upsert(5, first, {});  // a removed id may come back via replay
  EXPECT_TRUE(index.Contains(5));
}

TEST(LiveIndexTest, SnapshotEntriesAreAscendingAndLiveOnly) {
  Rng rng(37);
  LiveIndex index(Options(search::SearchStrategy::kMih));
  // Insert out of id order (as round-robin sharding produces), remove some.
  for (const int id : {9, 2, 14, 5, 11, 0}) {
    ASSERT_TRUE(index.Insert(id, RandomCode(32, rng), {float(id)}).ok());
  }
  ASSERT_TRUE(index.Remove(14).ok());
  ASSERT_TRUE(index.Remove(2).ok());
  const auto entries = index.SnapshotEntries();
  ASSERT_EQ(entries.size(), 4u);
  const std::vector<int> want = {0, 5, 9, 11};
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].id, want[i]);
    EXPECT_EQ(entries[i].embedding, std::vector<float>{float(want[i])});
  }
}

TEST(LiveIndexTest, MutationEpochAdvancesOnEveryMutation) {
  Rng rng(43);
  LiveIndexOptions options = Options(search::SearchStrategy::kMih);
  options.compact_min_ops = 4;
  options.compact_ratio = 0.1;
  LiveIndex index(options);
  EXPECT_EQ(index.mutation_epoch(), 0u);

  uint64_t epoch = 0;
  const auto expect_advanced = [&](const char* op) {
    const uint64_t now = index.mutation_epoch();
    EXPECT_GT(now, epoch) << op;
    epoch = now;
  };

  ASSERT_TRUE(index.Insert(0, RandomCode(32, rng), {}).ok());
  expect_advanced("Insert");
  ASSERT_TRUE(index.Update(0, RandomCode(32, rng), {}).ok());
  expect_advanced("Update");
  index.Upsert(1, RandomCode(32, rng), {});
  expect_advanced("Upsert(new)");
  index.Upsert(1, RandomCode(32, rng), {});
  expect_advanced("Upsert(replace)");
  ASSERT_TRUE(index.Remove(0).ok());
  expect_advanced("Remove");
  EXPECT_TRUE(index.RemoveIfPresent(1));
  expect_advanced("RemoveIfPresent");

  // Failed mutations observe nothing to change and must not advance it.
  EXPECT_FALSE(index.Remove(0).ok());
  EXPECT_FALSE(index.RemoveIfPresent(1));
  EXPECT_EQ(index.mutation_epoch(), epoch);

  // A compaction install changes the physical layout: it must also advance
  // the epoch (conservative invalidation for layout-keyed consumers).
  for (int i = 10; i < 20; ++i) {
    ASSERT_TRUE(index.Insert(i, RandomCode(32, rng), {}).ok());
  }
  epoch = index.mutation_epoch();
  ASSERT_TRUE(index.ClaimCompaction());
  index.RunClaimedCompaction();
  expect_advanced("RunClaimedCompaction");
}

}  // namespace
}  // namespace traj2hash::ingest
