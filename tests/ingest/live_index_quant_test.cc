// LiveIndex in quantize mode (DESIGN.md §17): embeddings live as int8 rows
// under one shared param set, EmbeddingOf/SnapshotEntries surface the
// dequantized lattice, RerankTopK is bit-identical to the float path over
// that lattice, compaction rebuilds the scales from the captured base (and
// requantizes the racing delta suffix), rows without embeddings are
// carried but skipped, and non-finite embeddings are rejected before any
// state mutates.
#include "ingest/live_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/code.h"
#include "search/flat_storage.h"
#include "search/knn.h"

namespace traj2hash::ingest {
namespace {

constexpr int kBits = 32;
constexpr int kDim = 12;

search::Code RandomCode(Rng& rng) {
  std::vector<float> v(kBits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

std::vector<float> RandomEmbedding(Rng& rng, double lo = -3.0,
                                   double hi = 3.0) {
  std::vector<float> e(kDim);
  for (float& x : e) x = static_cast<float>(rng.Uniform(lo, hi));
  return e;
}

LiveIndexOptions QuantOptions(
    search::SearchStrategy strategy = search::SearchStrategy::kMih) {
  LiveIndexOptions options;
  options.num_bits = kBits;
  options.strategy = strategy;
  options.quantize = true;
  options.embedding_dim = kDim;
  return options;
}

/// The float path RerankTopK must match: exact top-k over the STORED
/// (lattice) embeddings of every live id, ties by ascending id. Reads the
/// lattice back through EmbeddingOf, so it stays correct across
/// compaction-time rescales.
std::vector<search::Neighbor> LatticeOracle(const LiveIndex& index,
                                            const std::vector<int>& live_ids,
                                            const std::vector<float>& query,
                                            int k) {
  std::vector<int> ids = live_ids;
  std::sort(ids.begin(), ids.end());
  search::FlatMatrix lattice(kDim);
  std::vector<int> row_to_id;
  for (const int id : ids) {
    const std::vector<float> e = index.EmbeddingOf(id);
    if (e.empty()) continue;  // rows without embeddings are skipped
    lattice.Append(e);
    row_to_id.push_back(id);
  }
  std::vector<search::Neighbor> top = search::TopKEuclidean(lattice, query, k);
  for (search::Neighbor& nb : top) nb.index = row_to_id[nb.index];
  return top;
}

void ExpectBitIdentical(const std::vector<search::Neighbor>& got,
                        const std::vector<search::Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;
  }
}

TEST(LiveIndexQuantTest, EmbeddingOfRoundTripsWithinHalfStep) {
  Rng rng(41);
  LiveIndex index(QuantOptions());
  std::map<int, std::vector<float>> originals;
  // Two corner rows pin the calibration range up front: the first insert
  // cold-starts the params, the second widens them once (requantizing only
  // row 0), and every later row lands strictly inside — so the only
  // expansions in play are accounted for in the bound below.
  originals[0] = std::vector<float>(kDim, -3.0f);
  originals[1] = std::vector<float>(kDim, 3.0f);
  ASSERT_TRUE(index.Insert(0, RandomCode(rng), originals[0]).ok());
  ASSERT_TRUE(index.Insert(1, RandomCode(rng), originals[1]).ok());
  for (int id = 2; id < 50; ++id) {
    const std::vector<float> e = RandomEmbedding(rng, -2.9, 2.9);
    ASSERT_TRUE(index.Insert(id, RandomCode(rng), e).ok());
    originals[id] = e;
  }
  const quant::QuantizationParams params = index.ParamsSnapshot();
  ASSERT_EQ(params.dim(), kDim);
  // Every in-range row is within half a step of its original; row 0 carries
  // one extra requantization from the widening (≤ half the tiny cold-start
  // step on top), so 0.7 steps covers everything with float headroom.
  for (const auto& [id, original] : originals) {
    const std::vector<float> back = index.EmbeddingOf(id);
    ASSERT_EQ(back.size(), original.size()) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_LE(std::abs(back[j] - original[j]), 0.7f * params.scale[j])
          << "id " << id << " dim " << j;
    }
  }

  // Compaction re-calibrates over the stored lattice — a subset of the
  // corner range, so the steps never grow — and requantizes each value once
  // more (≤ half a rebuilt step of extra movement).
  index.Compact();
  const quant::QuantizationParams rebuilt = index.ParamsSnapshot();
  for (int j = 0; j < kDim; ++j) {
    EXPECT_LE(rebuilt.scale[j], params.scale[j] * (1.0f + 1e-5f)) << j;
  }
  for (const auto& [id, original] : originals) {
    const std::vector<float> back = index.EmbeddingOf(id);
    for (int j = 0; j < kDim; ++j) {
      EXPECT_LE(std::abs(back[j] - original[j]), 1.2f * params.scale[j])
          << "id " << id << " dim " << j;
    }
  }
}

TEST(LiveIndexQuantTest, BulkLoadExpandsParamsInsteadOfSaturating) {
  // The regression the in-place widening exists for: a bulk load whose
  // first row is narrow must not clamp the rest of the corpus onto the
  // first row's ±½ window. Every loaded value has to round-trip within the
  // final (widened) step budget, including the early rows that were
  // requantized as the range grew.
  Rng rng(47);
  LiveIndex index(QuantOptions());
  std::map<int, std::vector<float>> originals;
  originals[0] = std::vector<float>(kDim, 0.01f);  // narrow first row
  ASSERT_TRUE(index.Insert(0, RandomCode(rng), originals[0]).ok());
  for (int id = 1; id < 120; ++id) {
    const std::vector<float> e = RandomEmbedding(rng);  // [-3, 3]
    ASSERT_TRUE(index.Insert(id, RandomCode(rng), e).ok());
    originals[id] = e;
  }
  const quant::QuantizationParams params = index.ParamsSnapshot();
  // The final range must cover roughly [-3, 3], not the first row's window.
  for (int j = 0; j < kDim; ++j) {
    EXPECT_GT(params.scale[j], 4.0f / 255.0f) << j;
  }
  // Each widening requantizes prior rows by ≤ half the (monotonically
  // growing) step, and lattice points move only when the new lattice
  // disagrees — in aggregate a few final steps of slack absorbs the whole
  // expansion history at this scale.
  for (const auto& [id, original] : originals) {
    const std::vector<float> back = index.EmbeddingOf(id);
    ASSERT_EQ(back.size(), original.size()) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_LE(std::abs(back[j] - original[j]), 4.0f * params.scale[j])
          << "id " << id << " dim " << j;
    }
  }
}

TEST(LiveIndexQuantTest, RerankMatchesLatticeOracleThroughMutations) {
  Rng rng(42);
  LiveIndex index(QuantOptions());
  std::map<int, int> live;  // id -> dummy
  std::vector<int> ids;
  for (int step = 0; step < 140; ++step) {
    const double dice = rng.Uniform(0.0, 1.0);
    if (dice < 0.55 || ids.empty()) {
      ASSERT_TRUE(
          index.Insert(step, RandomCode(rng), RandomEmbedding(rng)).ok());
      ids.push_back(step);
    } else if (dice < 0.7) {
      const int victim = ids[step % ids.size()];
      ASSERT_TRUE(index.Remove(victim).ok());
      ids.erase(std::find(ids.begin(), ids.end(), victim));
    } else if (dice < 0.9) {
      const int victim = ids[step % ids.size()];
      ASSERT_TRUE(
          index.Update(victim, RandomCode(rng), RandomEmbedding(rng)).ok());
    } else {
      index.Compact();
    }
    if (ids.empty()) continue;

    const search::Code qcode = RandomCode(rng);
    const std::vector<float> qemb = RandomEmbedding(rng);
    const int k = 1 + step % 7;
    // num_candidates covers every live entry, so the Hamming stage admits
    // them all and the result must equal the full lattice oracle.
    const auto got = index.RerankTopK(qcode, qemb, k, 10000);
    ExpectBitIdentical(got, LatticeOracle(index, ids, qemb, k));
  }
  EXPECT_GT(index.rerank_stats().queries, 0u);
  EXPECT_EQ(index.rerank_stats().band_violations, 0u);
}

TEST(LiveIndexQuantTest, CompactionRebuildsParamsFromSurvivors) {
  Rng rng(43);
  LiveIndex index(QuantOptions());
  // An extreme outlier plus a −1 corner pin the range to ≈ [−1, 1000.5] in
  // two inserts; the survivors then land strictly inside it (kept off the
  // float-rounded range edge), so no further widening perturbs them.
  std::map<int, std::vector<float>> originals;
  ASSERT_TRUE(
      index.Insert(0, RandomCode(rng), std::vector<float>(kDim, 1000.0f))
          .ok());
  originals[1] = std::vector<float>(kDim, -1.0f);
  ASSERT_TRUE(index.Insert(1, RandomCode(rng), originals[1]).ok());
  for (int id = 2; id < 40; ++id) {
    const std::vector<float> e = RandomEmbedding(rng, -0.99, 0.99);
    ASSERT_TRUE(index.Insert(id, RandomCode(rng), e).ok());
    originals[id] = e;
  }
  index.Compact();
  const quant::QuantizationParams wide = index.ParamsSnapshot();
  for (int j = 0; j < kDim; ++j) {
    // The outlier keeps the rebuilt steps coarse (≈ 1001/255 ≈ 3.9).
    EXPECT_GT(wide.scale[j], 3.0f) << "dim " << j;
  }

  // Removing the outlier lets the next compaction re-calibrate over the
  // survivors alone, collapsing the steps by orders of magnitude. The
  // survivors' stored values carry the coarse-lattice error permanently
  // (the originals are gone — compaction only ever sees the lattice), so
  // the positional bound is a wide step plus a tight step, not half a
  // tight step.
  ASSERT_TRUE(index.Remove(0).ok());
  index.Compact();
  const quant::QuantizationParams tight = index.ParamsSnapshot();
  for (int j = 0; j < kDim; ++j) {
    EXPECT_LT(tight.scale[j], 0.1f * wide.scale[j]) << "dim " << j;
  }
  for (const auto& [id, original] : originals) {
    const std::vector<float> back = index.EmbeddingOf(id);
    ASSERT_EQ(back.size(), static_cast<size_t>(kDim)) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_LE(std::abs(back[j] - original[j]),
                wide.scale[j] + tight.scale[j] + 1e-3f)
          << "id " << id << " dim " << j;
    }
  }
}

TEST(LiveIndexQuantTest, RowsWithoutEmbeddingsAreCarriedButSkipped) {
  Rng rng(44);
  LiveIndex index(QuantOptions());
  ASSERT_TRUE(index.Insert(0, RandomCode(rng), {}).ok());
  ASSERT_TRUE(index.Insert(1, RandomCode(rng), RandomEmbedding(rng)).ok());
  ASSERT_TRUE(index.Insert(2, RandomCode(rng), {}).ok());
  ASSERT_TRUE(index.Insert(3, RandomCode(rng), RandomEmbedding(rng)).ok());

  EXPECT_TRUE(index.EmbeddingOf(0).empty());
  EXPECT_EQ(index.EmbeddingOf(1).size(), static_cast<size_t>(kDim));

  const auto top =
      index.RerankTopK(RandomCode(rng), RandomEmbedding(rng), 10, 100);
  ASSERT_EQ(top.size(), 2u);
  for (const auto& nb : top) {
    EXPECT_TRUE(nb.index == 1 || nb.index == 3) << nb.index;
  }

  // Compaction keeps the flags straight.
  index.Compact();
  EXPECT_TRUE(index.EmbeddingOf(0).empty());
  EXPECT_EQ(index.EmbeddingOf(3).size(), static_cast<size_t>(kDim));
  const auto entries = index.SnapshotEntries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_TRUE(entries[0].embedding.empty());
  EXPECT_FALSE(entries[1].embedding.empty());
}

TEST(LiveIndexQuantTest, NonFiniteEmbeddingsAreRejectedBeforeMutation) {
  Rng rng(45);
  LiveIndex index(QuantOptions());
  ASSERT_TRUE(index.Insert(0, RandomCode(rng), RandomEmbedding(rng)).ok());

  std::vector<float> poison = RandomEmbedding(rng);
  poison[5] = std::numeric_limits<float>::quiet_NaN();
  const Status insert = index.Insert(1, RandomCode(rng), poison);
  EXPECT_EQ(insert.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(index.Contains(1));
  EXPECT_EQ(index.live_size(), 1);

  poison[5] = std::numeric_limits<float>::infinity();
  const Status update = index.Update(0, RandomCode(rng), poison);
  EXPECT_EQ(update.code(), StatusCode::kInvalidArgument);
  // The rejected update must not have clobbered the stored row.
  EXPECT_EQ(index.EmbeddingOf(0).size(), static_cast<size_t>(kDim));
  EXPECT_TRUE(std::isfinite(index.EmbeddingOf(0)[5]));
}

TEST(LiveIndexQuantTest, ResidentBytesShowTheInt8Cut) {
  Rng rng(46);
  LiveIndexOptions fopts;
  fopts.num_bits = kBits;
  LiveIndex float_index(fopts);
  LiveIndex quant_index(QuantOptions());
  const int n = 200;
  for (int id = 0; id < n; ++id) {
    const search::Code code = RandomCode(rng);
    const std::vector<float> e = RandomEmbedding(rng);
    ASSERT_TRUE(float_index.Insert(id, code, e).ok());
    ASSERT_TRUE(quant_index.Insert(id, code, e).ok());
  }
  const size_t fbytes = float_index.embedding_resident_bytes();
  const size_t qbytes = quant_index.embedding_resident_bytes();
  EXPECT_EQ(fbytes, static_cast<size_t>(n) * kDim * sizeof(float));
  // int8 rows are stride-padded (kDim=12 → 32 B/row) and carry the three
  // param vectors, so the cut at this tiny dim is below 4× — but the store
  // must still be strictly smaller, and at production dims (multiples of
  // 32) the ratio approaches 4×.
  EXPECT_LT(qbytes, fbytes);
  EXPECT_GE(qbytes, static_cast<size_t>(n) * kDim);  // at least 1 B per value
}

}  // namespace
}  // namespace traj2hash::ingest
