// The churned-serving acceptance test (ISSUE: live mutation): a randomized
// interleaving of Insert / Remove / Update / query against ShardedIndex
// must stay bit-identical to a brute-force oracle over the logical corpus,
// for every (shard count, strategy) combination — deletes take effect
// immediately, updates re-rank, compactions never perturb results. Plus a
// mutate-while-query stress that TSan watches for data races.
#include <atomic>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::serve {
namespace {

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

std::vector<search::Neighbor> Oracle(
    const std::map<int, search::Code>& live, const search::Code& query,
    int k) {
  std::vector<search::Neighbor> all;
  for (const auto& [id, code] : live) {
    all.push_back(
        {id, static_cast<double>(search::HammingDistance(code, query))});
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

class ChurnPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<int, search::SearchStrategy>> {};

INSTANTIATE_TEST_SUITE_P(
    ShardCountsAndStrategies, ChurnPropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 4),
                       ::testing::Values(search::SearchStrategy::kBrute,
                                         search::SearchStrategy::kRadius2,
                                         search::SearchStrategy::kMih)));

TEST_P(ChurnPropertyTest, InterleavedMutationsMatchBruteForceOracle) {
  const auto [num_shards, strategy] = GetParam();
  Rng rng(100 + num_shards);
  const int kBits = 32;
  // Aggressive compaction settings so the base/delta boundary moves often.
  ShardedIndex index(num_shards, kBits, strategy, /*mih_substrings=*/0,
                     /*compact_min_ops=*/6, /*compact_ratio=*/0.2);
  std::map<int, search::Code> live;

  for (int step = 0; step < 220; ++step) {
    const double dice = rng.Uniform(0.0, 1.0);
    if (dice < 0.5 || live.empty()) {
      const search::Code code = RandomCode(kBits, rng);
      const Result<int> id = index.Insert(code, {});
      ASSERT_TRUE(id.ok());
      live[id.value()] = code;
    } else if (dice < 0.7) {
      const int victim = std::next(live.begin(), step % live.size())->first;
      ASSERT_TRUE(index.Remove(victim).ok());
      live.erase(victim);
    } else if (dice < 0.9) {
      const int victim = std::next(live.begin(), step % live.size())->first;
      const search::Code code = RandomCode(kBits, rng);
      ASSERT_TRUE(index.Update(victim, code, {}).ok());
      live[victim] = code;
    } else {
      // A mutator's owner would run these in the background; here a
      // synchronous sweep keeps the test deterministic.
      for (int s = 0; s < index.num_shards(); ++s) {
        if (index.ClaimCompaction(s)) index.RunClaimedCompaction(s);
      }
    }
    ASSERT_EQ(index.live_size(), static_cast<int>(live.size()));

    const search::Code query = RandomCode(kBits, rng);
    const int k = 1 + step % 9;
    const auto got = index.QueryTopK(query, k);
    const auto want = Oracle(live, query, k);
    ASSERT_EQ(got.size(), want.size()) << "step " << step;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].index, want[i].index)
          << "step " << step << " rank " << i;
      ASSERT_EQ(got[i].distance, want[i].distance)
          << "step " << step << " rank " << i;
    }
  }
  EXPECT_GE(index.size(), index.live_size())
      << "the id watermark covers every live entry";
}

TEST(ChurnInvariantTest, WatermarkNeverShrinks) {
  Rng rng(41);
  ShardedIndex index(3, 32);
  int watermark = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.Insert(RandomCode(32, rng), {}).ok());
    EXPECT_GT(index.size(), watermark);
    watermark = index.size();
    if (i % 3 == 0) {
      ASSERT_TRUE(index.Remove(i / 2).ok());
      EXPECT_EQ(index.size(), watermark) << "removals never shrink ids";
    }
  }
}

/// TSan target: writers churn the index while readers query; queries must
/// always return internally consistent, sorted results whose ids were live
/// at some point. (Exact-set checks need a quiescent index; the parameterised
/// oracle test above covers exactness.)
TEST(ChurnConcurrencyTest, MutateWhileQueryIsRaceFree) {
  Rng seed_rng(51);
  const int kBits = 32;
  ShardedIndex index(4, kBits, search::SearchStrategy::kMih,
                     /*mih_substrings=*/0,
                     /*compact_min_ops=*/8, /*compact_ratio=*/0.2);
  // Pre-fill so readers always have something to find.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(index.Insert(RandomCode(kBits, seed_rng), {}).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> query_errors{0};

  std::thread writer([&index] {
    Rng rng(52);
    for (int i = 0; i < 400; ++i) {
      const double dice = rng.Uniform(0.0, 1.0);
      if (dice < 0.5) {
        (void)index.Insert(RandomCode(32, rng), {});
      } else if (dice < 0.75) {
        (void)index.Remove(static_cast<int>(
            rng.Uniform(0.0, static_cast<double>(index.size()))));
      } else {
        (void)index.Update(
            static_cast<int>(
                rng.Uniform(0.0, static_cast<double>(index.size()))),
            RandomCode(32, rng), {});
      }
    }
  });
  std::thread compactor([&index, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int s = 0; s < index.num_shards(); ++s) {
        if (index.ClaimCompaction(s)) index.RunClaimedCompaction(s);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&index, &stop, &query_errors, r] {
      Rng rng(60 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const search::Code query = RandomCode(32, rng);
        const auto hits = index.QueryTopK(query, 5);
        for (size_t i = 0; i < hits.size(); ++i) {
          if (hits[i].index < 0 || hits[i].index >= index.size() ||
              (i > 0 && !search::NeighborLess(hits[i - 1], hits[i]))) {
            query_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  writer.join();
  stop.store(true, std::memory_order_release);
  compactor.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(query_errors.load(), 0);
  // Quiescent again: results must be exact against an oracle rebuilt from
  // the shards' own snapshots.
  std::map<int, search::Code> live;
  for (int s = 0; s < index.num_shards(); ++s) {
    for (const auto& entry : index.shard(s).SnapshotEntries()) {
      live[entry.id] = entry.code;
    }
  }
  Rng rng(70);
  for (int q = 0; q < 20; ++q) {
    const search::Code query = RandomCode(32, rng);
    const auto got = index.QueryTopK(query, 7);
    const auto want = Oracle(live, query, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].index, want[i].index);
      ASSERT_EQ(got[i].distance, want[i].distance);
    }
  }
}

}  // namespace
}  // namespace traj2hash::serve
