#include "search/knn.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace traj2hash::search {
namespace {

std::vector<std::vector<float>> RandomDb(int n, int d, Rng& rng) {
  std::vector<std::vector<float>> db(n, std::vector<float>(d));
  for (auto& row : db) {
    for (float& v : row) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return db;
}

std::vector<Neighbor> NaiveEuclidean(const std::vector<std::vector<float>>& db,
                                     const std::vector<float>& q, int k) {
  std::vector<Neighbor> all;
  for (size_t i = 0; i < db.size(); ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < q.size(); ++j) {
      acc += (db[i][j] - q[j]) * (db[i][j] - q[j]);
    }
    all.push_back({static_cast<int>(i), std::sqrt(acc)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  });
  all.resize(std::min<size_t>(k, all.size()));
  return all;
}

TEST(TopKEuclideanTest, MatchesNaiveOnRandomData) {
  Rng rng(1);
  const auto db = RandomDb(200, 8, rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(8);
    for (float& v : q) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    const auto fast = TopKEuclidean(db, q, 10);
    const auto naive = NaiveEuclidean(db, q, 10);
    ASSERT_EQ(fast.size(), naive.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].index, naive[i].index);
      EXPECT_NEAR(fast[i].distance, naive[i].distance, 1e-6);
    }
  }
}

TEST(TopKEuclideanTest, ResultsSortedAscending) {
  Rng rng(2);
  const auto db = RandomDb(100, 4, rng);
  const auto result = TopKEuclidean(db, db[0], 20);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
  EXPECT_EQ(result[0].index, 0);  // the query itself
}

TEST(TopKEuclideanTest, KClampedToDbSize) {
  Rng rng(3);
  const auto db = RandomDb(5, 3, rng);
  EXPECT_EQ(TopKEuclidean(db, db[0], 50).size(), 5u);
}

TEST(TopKEuclideanTest, TieBreakByIndex) {
  std::vector<std::vector<float>> db = {{1.0f}, {1.0f}, {1.0f}};
  const auto result = TopKEuclidean(db, {0.0f}, 2);
  EXPECT_EQ(result[0].index, 0);
  EXPECT_EQ(result[1].index, 1);
}

TEST(TopKHammingTest, OrdersByPopcount) {
  const Code q = PackSigns({1, 1, 1, 1});
  std::vector<Code> db = {
      PackSigns({-1, -1, -1, -1}),  // distance 4
      PackSigns({1, 1, 1, -1}),     // distance 1
      PackSigns({1, 1, 1, 1}),      // distance 0
      PackSigns({1, -1, -1, 1}),    // distance 2
  };
  const auto result = TopKHamming(db, q, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].index, 2);
  EXPECT_EQ(result[1].index, 1);
  EXPECT_EQ(result[2].index, 3);
  EXPECT_EQ(result[0].distance, 0.0);
}

}  // namespace
}  // namespace traj2hash::search
