#include "search/hamming_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace traj2hash::search {
namespace {

Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return PackSigns(v);
}

Code FlipBits(Code c, std::vector<int> bits) {
  for (const int b : bits) c.words[b / 64] ^= (uint64_t{1} << (b % 64));
  return c;
}

TEST(HammingIndexTest, ProbeFindsExactAndNearCodes) {
  Rng rng(1);
  const Code base = RandomCode(32, rng);
  std::vector<Code> db = {
      base,                      // distance 0
      FlipBits(base, {3}),       // distance 1
      FlipBits(base, {5, 9}),    // distance 2
      FlipBits(base, {1, 2, 3}),  // distance 3: not probed
  };
  HammingIndex index(db);
  std::vector<int> found = index.ProbeWithinRadius2(base);
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<int>{0, 1, 2}));
}

TEST(HammingIndexTest, ProbeDeduplicatesNothingAcrossBuckets) {
  // Identical codes land in one bucket but both ids are returned.
  Rng rng(2);
  const Code base = RandomCode(16, rng);
  HammingIndex index({base, base});
  const std::vector<int> found = index.ProbeWithinRadius2(base);
  EXPECT_EQ(found.size(), 2u);
}

TEST(HammingIndexTest, HybridMatchesBruteForceWhenCandidatesSuffice) {
  Rng rng(3);
  const Code q = RandomCode(24, rng);
  std::vector<Code> db;
  // 10 codes within radius <= 2, plus far noise.
  for (int i = 0; i < 10; ++i) {
    db.push_back(FlipBits(q, {i % 2 == 0 ? i : i, (i * 7) % 24}));
  }
  for (int i = 0; i < 50; ++i) {
    Code noise = RandomCode(24, rng);
    if (HammingDistance(noise, q) <= 2) continue;
    db.push_back(noise);
  }
  HammingIndex index(db);
  const auto hybrid = index.HybridTopK(q, 5);
  const auto brute = index.BruteForceTopK(q, 5);
  ASSERT_EQ(hybrid.size(), brute.size());
  for (size_t i = 0; i < hybrid.size(); ++i) {
    EXPECT_EQ(hybrid[i].distance, brute[i].distance) << i;
  }
}

TEST(HammingIndexTest, HybridFallsBackToBruteForce) {
  // No near neighbours: hybrid must degrade to the brute-force scan and
  // still return exactly k results.
  Rng rng(4);
  std::vector<Code> db;
  for (int i = 0; i < 40; ++i) db.push_back(RandomCode(64, rng));
  HammingIndex index(db);
  Code q = RandomCode(64, rng);
  const auto hybrid = index.HybridTopK(q, 7);
  const auto brute = index.BruteForceTopK(q, 7);
  ASSERT_EQ(hybrid.size(), 7u);
  for (size_t i = 0; i < hybrid.size(); ++i) {
    EXPECT_EQ(hybrid[i].index, brute[i].index);
  }
}

TEST(HammingIndexTest, BucketsCountDistinctCodes) {
  Rng rng(5);
  const Code a = RandomCode(16, rng);
  const Code b = FlipBits(a, {0});
  HammingIndex index({a, a, b});
  EXPECT_EQ(index.num_buckets(), 2);
  EXPECT_EQ(index.size(), 3);
}

TEST(HammingIndexTest, InsertExtendsSearchResults) {
  Rng rng(7);
  const Code base = RandomCode(32, rng);
  HammingIndex index({FlipBits(base, {0, 5, 9})});  // distance 3 from base
  EXPECT_TRUE(index.ProbeWithinRadius2(base).empty());
  const int id = index.Insert(FlipBits(base, {2}));  // distance 1
  EXPECT_EQ(id, 1);
  EXPECT_EQ(index.size(), 2);
  const std::vector<int> found = index.ProbeWithinRadius2(base);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 1);
  // Brute force also sees the new entry.
  const auto top = index.BruteForceTopK(base, 1);
  EXPECT_EQ(top[0].index, 1);
  EXPECT_EQ(top[0].distance, 1.0);
}

TEST(HammingIndexDeathTest, InsertRejectsWidthMismatch) {
  Rng rng(8);
  HammingIndex index({RandomCode(16, rng)});
  EXPECT_DEATH(index.Insert(RandomCode(32, rng)), "CHECK");
}

TEST(HammingIndexDeathTest, MixedWidthsRejected) {
  Rng rng(6);
  EXPECT_DEATH(HammingIndex({RandomCode(16, rng), RandomCode(32, rng)}),
               "CHECK");
}

}  // namespace
}  // namespace traj2hash::search
