// Per-ISA contract tests for search::kernels (DESIGN.md §14): every
// available backend is forced via ScopedKernelIsa and checked against
// exact oracles. Hamming kernels are integer popcount sums, so they must be
// BIT-IDENTICAL on every backend and through every search strategy; the L2
// scan is deterministic per backend and within epsilon of the exact value
// across backends. Also pins the storage layout the fast paths rely on:
// 32-byte-aligned rows and block-padded strides. Unavailable ISAs skip
// visibly ("SKIPPED: no avx2"), never silently downgrade.

#include "search/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "search/flat_storage.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"

namespace traj2hash::search {
namespace {

Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return PackSigns(v);
}

class SearchKernelIsaTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    const auto parsed = ParseKernelIsa(GetParam());
    ASSERT_TRUE(parsed.ok());
    isa_ = parsed.value();
    if (!KernelIsaAvailable(isa_)) {
      GTEST_SKIP() << "SKIPPED: no " << GetParam()
                   << " (not compiled in or unsupported by this CPU)";
    }
  }

  KernelIsa isa_ = KernelIsa::kScalar;
};

/// All widths: 1..5 words covers the packed-2-rows AVX2 path (≤128 bits),
/// the 4-row batched path (192/256 bits), and the >4-word generic tail;
/// n values cover the 4-row blocking and its 1..3-row tails.
TEST_P(SearchKernelIsaTest, HammingScanBitIdenticalToPerPairOracle) {
  ScopedKernelIsa pin(isa_);
  Rng rng(201);
  for (const int bits : {17, 64, 100, 128, 192, 256, 320}) {
    for (const int n : {1, 2, 3, 4, 5, 33}) {
      std::vector<Code> codes;
      for (int i = 0; i < n; ++i) codes.push_back(RandomCode(bits, rng));
      const PackedCodes packed = PackedCodes::FromCodes(codes);
      const Code query = RandomCode(bits, rng);
      std::vector<int32_t> out(n);
      kernels::HammingScan(packed.data(), query.words.data(), n,
                           packed.words_per_code(), packed.stride_words(),
                           out.data());
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], HammingDistance(codes[i], query))
            << "bits=" << bits << " n=" << n << " i=" << i;
        EXPECT_EQ(kernels::HammingDistanceRow(packed.row(i),
                                              query.words.data(),
                                              packed.words_per_code()),
                  out[i]);
      }
    }
  }
}

/// The unaligned/unpadded layout (stride == words_per_code, arbitrary base
/// pointer) must take the generic path and still be exact.
TEST_P(SearchKernelIsaTest, HammingScanExactOnUnpaddedLayout) {
  ScopedKernelIsa pin(isa_);
  Rng rng(202);
  const int bits = 128, wpc = 2, n = 21;
  std::vector<Code> codes;
  for (int i = 0; i < n; ++i) codes.push_back(RandomCode(bits, rng));
  // Tight rows at the natural word stride, deliberately NOT block-padded,
  // shifted one word off any 32-byte boundary.
  std::vector<uint64_t> raw(static_cast<size_t>(n) * wpc + 1, 0);
  for (int i = 0; i < n; ++i) {
    std::memcpy(raw.data() + 1 + static_cast<size_t>(i) * wpc,
                codes[i].words.data(), wpc * sizeof(uint64_t));
  }
  const Code query = RandomCode(bits, rng);
  std::vector<int32_t> out(n);
  kernels::HammingScan(raw.data() + 1, query.words.data(), n, wpc, wpc,
                       out.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], HammingDistance(codes[i], query)) << i;
  }
}

TEST_P(SearchKernelIsaTest, SquaredL2ScanDeterministicAndNearExact) {
  ScopedKernelIsa pin(isa_);
  Rng rng(203);
  for (const int dim : {1, 3, 8, 24, 128}) {
    const int n = 17;
    std::vector<std::vector<float>> rows(n, std::vector<float>(dim));
    std::vector<float> query(dim);
    for (auto& r : rows) {
      for (float& v : r) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    for (float& v : query) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    const FlatMatrix db = FlatMatrix::FromRows(rows, dim);

    std::vector<double> got(n), again(n);
    kernels::SquaredL2Scan(db.data(), query.data(), n, dim, db.stride(),
                           got.data());
    kernels::SquaredL2Scan(db.data(), query.data(), n, dim, db.stride(),
                           again.data());
    EXPECT_EQ(0, std::memcmp(got.data(), again.data(), n * sizeof(double)))
        << "nondeterministic at dim=" << dim;
    for (int i = 0; i < n; ++i) {
      double exact = 0.0;
      for (int j = 0; j < dim; ++j) {
        const double diff = static_cast<double>(rows[i][j]) - query[j];
        exact += diff * diff;
      }
      const double denom = std::max(1.0, std::fabs(exact));
      EXPECT_LE(std::fabs(got[i] - exact) / denom, 1e-12)
          << "dim=" << dim << " i=" << i;
    }
  }
}

/// Every search strategy must return the same ids and distances as brute
/// force under every ISA — the end-to-end form of Hamming bit-identity.
TEST_P(SearchKernelIsaTest, StrategiesMatchBruteForceExactly) {
  ScopedKernelIsa pin(isa_);
  Rng rng(204);
  const int bits = 128, n = 400, k = 9;
  HammingIndex index(bits);
  MihIndex mih(bits);
  std::vector<Code> codes;
  for (int i = 0; i < n; ++i) {
    codes.push_back(RandomCode(bits, rng));
    index.Insert(codes.back());
    mih.Insert(codes.back());
  }
  for (int q = 0; q < 10; ++q) {
    const Code query = RandomCode(bits, rng);
    const auto brute = index.BruteForceTopK(query, k);
    const auto hybrid = index.HybridTopK(query, k);
    const auto from_mih = mih.TopK(query, k);
    ASSERT_EQ(brute.size(), hybrid.size());
    ASSERT_EQ(brute.size(), from_mih.size());
    for (size_t i = 0; i < brute.size(); ++i) {
      EXPECT_EQ(brute[i].index, hybrid[i].index) << q << ":" << i;
      EXPECT_EQ(brute[i].distance, hybrid[i].distance) << q << ":" << i;
      EXPECT_EQ(brute[i].index, from_mih[i].index) << q << ":" << i;
      EXPECT_EQ(brute[i].distance, from_mih[i].distance) << q << ":" << i;
    }
  }
}

/// The SIMD fast paths assume this layout; if it regresses they fall back
/// (slower) or — for a misreported stride — read padding as data. Pin it.
TEST(KernelStorageLayoutTest, RowsAreAlignedAndBlockPadded) {
  Rng rng(205);
  PackedCodes packed(96);  // 2 words -> padded stride of 4
  for (int i = 0; i < 9; ++i) packed.Append(RandomCode(96, rng));
  EXPECT_EQ(packed.words_per_code(), 2);
  EXPECT_EQ(packed.stride_words() % 4, 0);
  for (int i = 0; i < packed.size(); ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(packed.row(i)) %
                  kKernelRowAlignment,
              0u)
        << i;
    // Padding words beyond words_per_code must be zero (XOR-neutral).
    for (int w = packed.words_per_code(); w < packed.stride_words(); ++w) {
      EXPECT_EQ(packed.row(i)[w], 0u) << i << ":" << w;
    }
  }

  FlatMatrix m(5);  // 5 floats -> padded stride of 8
  m.Append({1, 2, 3, 4, 5});
  m.Append({6, 7, 8, 9, 10});
  EXPECT_EQ(m.stride() % 8, 0);
  for (int i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(
        reinterpret_cast<uintptr_t>(m.row(i)) % kKernelRowAlignment, 0u)
        << i;
    for (int j = m.cols(); j < m.stride(); ++j) {
      EXPECT_EQ(m.row(i)[j], 0.0f) << i << ":" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, SearchKernelIsaTest,
                         ::testing::Values("scalar", "sse2", "avx2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace traj2hash::search
