// Tests for the synthetic timing workload used by the efficiency benches
// (Figs. 5-6): the clustered code distribution is the property that makes
// Hamming-Hybrid's table-lookup path meaningful, so it is worth guarding.

#include <gtest/gtest.h>

#include "bench/timing_data.h"
#include "search/hamming_index.h"

namespace traj2hash::bench {
namespace {

TEST(TimingWorkloadTest, ShapesMatchRequest) {
  const TimingWorkload w = MakeTimingWorkload(500, 16, 64, 25, 1);
  EXPECT_EQ(w.db_embeddings.size(), 500u);
  EXPECT_EQ(w.db_codes.size(), 500u);
  EXPECT_EQ(w.query_embeddings.size(), 16u);
  EXPECT_EQ(w.query_codes.size(), 16u);
  EXPECT_EQ(w.db_embeddings[0].size(), 64u);
  EXPECT_EQ(w.db_codes[0].num_bits, 64);
}

TEST(TimingWorkloadTest, CodesClusterWithinRadiusFour) {
  // Members of one cluster are each <= 2 flips from the centre, so any two
  // members are within Hamming distance 4.
  const int cluster = 25;
  const TimingWorkload w = MakeTimingWorkload(200, 4, 64, cluster, 2);
  for (int c = 0; c < 200 / cluster; ++c) {
    for (int i = 1; i < cluster; ++i) {
      EXPECT_LE(search::HammingDistance(w.db_codes[c * cluster],
                                        w.db_codes[c * cluster + i]),
                4);
    }
  }
}

TEST(TimingWorkloadTest, ClusteredQueriesHitProbes) {
  const TimingWorkload w = MakeTimingWorkload(2000, 32, 64, 40, 3);
  const search::HammingIndex index(w.db_codes);
  int even_hits = 0, odd_hits = 0;
  for (size_t q = 0; q < w.query_codes.size(); ++q) {
    const bool hit = !index.ProbeWithinRadius2(w.query_codes[q]).empty();
    (q % 2 == 0 ? even_hits : odd_hits) += hit;
  }
  // Even queries are planted inside clusters; odd queries are random 64-bit
  // codes (isolated with overwhelming probability).
  EXPECT_GT(even_hits, 12);  // of 16
  EXPECT_LT(odd_hits, 4);
}

TEST(TimingWorkloadTest, DeterministicUnderSeed) {
  const TimingWorkload a = MakeTimingWorkload(100, 4, 32, 10, 9);
  const TimingWorkload b = MakeTimingWorkload(100, 4, 32, 10, 9);
  EXPECT_EQ(a.db_codes[50], b.db_codes[50]);
  EXPECT_EQ(a.db_embeddings[50], b.db_embeddings[50]);
}

}  // namespace
}  // namespace traj2hash::bench
