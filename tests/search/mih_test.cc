// Property tests for the exact multi-index Hamming index (search/mih.h):
// the acceptance contract is that MIH top-k is element-for-element identical
// (ids AND order under NeighborLess) to HammingIndex::BruteForceTopK for
// every (n, B, k, m) configuration, including duplicate codes, k > n and the
// cold-start (int num_bits) construction path.

#include "search/mih.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/hamming_index.h"

namespace traj2hash::search {
namespace {

Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return PackSigns(v);
}

Code FlipBits(Code c, const std::vector<int>& bits) {
  for (const int b : bits) c.words[b / 64] ^= (uint64_t{1} << (b % 64));
  return c;
}

/// A database with clustered structure (realistic hash codes) plus exact
/// duplicates, so top-k ties and the pruning bound both get exercised.
std::vector<Code> ClusteredDb(int n, int bits, Rng& rng) {
  std::vector<Code> db;
  db.reserve(n);
  Code center = RandomCode(bits, rng);
  for (int i = 0; i < n; ++i) {
    if (i % 16 == 0) center = RandomCode(bits, rng);
    if (i % 7 == 0) {
      db.push_back(center);  // exact duplicate of the cluster centre
      continue;
    }
    std::vector<int> flips;
    const int num_flips = static_cast<int>(rng.Uniform(0.0, 4.0));
    for (int f = 0; f < num_flips; ++f) {
      flips.push_back(static_cast<int>(rng.Uniform(0.0, bits - 0.001)));
    }
    db.push_back(FlipBits(center, flips));
  }
  return db;
}

void ExpectIdentical(const std::vector<Neighbor>& mih,
                     const std::vector<Neighbor>& brute) {
  ASSERT_EQ(mih.size(), brute.size());
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_EQ(mih[i].index, brute[i].index) << "rank " << i;
    EXPECT_EQ(mih[i].distance, brute[i].distance) << "rank " << i;
  }
}

/// (num_bits, num_substrings) sweep; 0 substrings = the ceil(B/16) default.
class MihEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MihEquivalenceTest, TopKMatchesBruteForceElementForElement) {
  const auto [bits, substrings] = GetParam();
  Rng rng(1000 + bits * 7 + substrings);
  for (const int n : {1, 5, 63, 200}) {
    const std::vector<Code> db = ClusteredDb(n, bits, rng);
    const MihIndex mih(db, substrings);
    const HammingIndex reference(db);
    ASSERT_EQ(mih.size(), n);
    for (int q = 0; q < 8; ++q) {
      // Half the queries are perturbed database entries (near hits), half
      // are fresh random codes (far, stresses radius growth).
      const Code query =
          q % 2 == 0
              ? FlipBits(db[static_cast<size_t>(q) % db.size()],
                         {q % bits, (q * 3 + 1) % bits})
              : RandomCode(bits, rng);
      for (const int k : {1, 3, 17, n, n + 10}) {
        ExpectIdentical(mih.TopK(query, k),
                        reference.BruteForceTopK(query, k));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSubstrings, MihEquivalenceTest,
    ::testing::Values(std::make_tuple(32, 0), std::make_tuple(32, 1),
                      std::make_tuple(32, 5), std::make_tuple(64, 0),
                      std::make_tuple(64, 2), std::make_tuple(128, 0),
                      std::make_tuple(128, 4), std::make_tuple(128, 11),
                      std::make_tuple(192, 0), std::make_tuple(192, 6)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "bits_" + std::to_string(std::get<0>(info.param)) + "_m_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MihIndexTest, ColdStartGrowsThroughInsert) {
  Rng rng(42);
  MihIndex index(64);  // empty (int num_bits) construction
  EXPECT_EQ(index.size(), 0);
  EXPECT_EQ(index.num_substrings(), 4);
  const Code probe = RandomCode(64, rng);
  EXPECT_TRUE(index.TopK(probe, 3).empty());

  EXPECT_EQ(index.Insert(probe), 0);
  EXPECT_EQ(index.Insert(FlipBits(probe, {1, 2})), 1);
  const auto hits = index.TopK(probe, 5);  // k > n
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].index, 0);
  EXPECT_EQ(hits[0].distance, 0.0);
  EXPECT_EQ(hits[1].index, 1);
  EXPECT_EQ(hits[1].distance, 2.0);
}

TEST(MihIndexTest, IncrementalInsertMatchesBulkBuild) {
  Rng rng(43);
  const std::vector<Code> db = ClusteredDb(120, 128, rng);
  const MihIndex bulk(db);
  MihIndex incremental(128);
  for (const Code& c : db) incremental.Insert(c);
  const Code query = RandomCode(128, rng);
  ExpectIdentical(incremental.TopK(query, 20), bulk.TopK(query, 20));
}

TEST(MihIndexTest, DuplicateCodesTieBreakByIndex) {
  Rng rng(44);
  const Code a = RandomCode(32, rng);
  const MihIndex index({a, a, a});
  const auto hits = index.TopK(a, 3);
  ASSERT_EQ(hits.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].index, i);
    EXPECT_EQ(hits[i].distance, 0.0);
  }
}

TEST(MihIndexTest, DefaultSubstringCountIsSixteenBitChunks) {
  EXPECT_EQ(MihIndex::DefaultSubstrings(8), 1);
  EXPECT_EQ(MihIndex::DefaultSubstrings(16), 1);
  EXPECT_EQ(MihIndex::DefaultSubstrings(32), 2);
  EXPECT_EQ(MihIndex::DefaultSubstrings(128), 8);
  EXPECT_EQ(MihIndex::DefaultSubstrings(192), 12);
  EXPECT_EQ(MihIndex::DefaultSubstrings(100), 7);  // uneven split
}

TEST(MihIndexTest, UnevenSubstringSplitStaysExact) {
  // 100 bits over 7 substrings: two widths (15 and 14 bits) in one index.
  Rng rng(45);
  const std::vector<Code> db = ClusteredDb(90, 100, rng);
  const MihIndex mih(db);
  const HammingIndex reference(db);
  for (int q = 0; q < 5; ++q) {
    const Code query = RandomCode(100, rng);
    ExpectIdentical(mih.TopK(query, 11), reference.BruteForceTopK(query, 11));
  }
}

TEST(MihIndexDeathTest, RejectsInvalidConfigurations) {
  EXPECT_DEATH(MihIndex(64, 65), "CHECK");   // m > num_bits
  EXPECT_DEATH(MihIndex(128, 2), "CHECK");   // 64-bit substrings: too wide
  Rng rng(46);
  MihIndex index(32);
  EXPECT_DEATH(index.Insert(RandomCode(64, rng)), "CHECK");  // width mismatch
}

}  // namespace
}  // namespace traj2hash::search
