// Per-ISA contract tests for kernels::QuantizedL2Scan (DESIGN.md §14/§17):
// every available backend is forced via ScopedKernelIsa and checked against
// a plain double-chain oracle. The int8 difference and its square are exact
// on every backend, so cross-backend divergence can only come from the
// accumulation order — bounded by a tight relative epsilon. Also pins that
// the scan honours the QuantizedMatrix byte-stride layout (padding never
// contributes). Unavailable ISAs skip visibly, never silently downgrade.
#include "search/kernels.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "quant/quantized_matrix.h"

namespace traj2hash::search {
namespace {

class QuantKernelIsaTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    const auto parsed = ParseKernelIsa(GetParam());
    ASSERT_TRUE(parsed.ok());
    isa_ = parsed.value();
    if (!KernelIsaAvailable(isa_)) {
      GTEST_SKIP() << "SKIPPED: no " << GetParam()
                   << " (not compiled in or unsupported by this CPU)";
    }
  }

  KernelIsa isa_ = KernelIsa::kScalar;
};

/// Ascending-j double chain over the exact integer differences — the
/// definition the kernel approximates up to accumulation order.
double Oracle(const int8_t* row, const int8_t* query, const float* scale_sq,
              int dim) {
  double acc = 0.0;
  for (int j = 0; j < dim; ++j) {
    const int diff = static_cast<int>(row[j]) - static_cast<int>(query[j]);
    acc += static_cast<double>(scale_sq[j]) * (diff * diff);
  }
  return acc;
}

/// Dims cover the 8-lane AVX2 main loop, its 1..7 tail, and dim < 8
/// entirely-tail shapes; n covers the scalar 4-row blocking and its tails.
TEST_P(QuantKernelIsaTest, MatchesDoubleChainOracleWithinEpsilon) {
  ScopedKernelIsa pin(isa_);
  Rng rng(301);
  for (const int dim : {1, 3, 7, 8, 9, 16, 31, 32, 33, 100, 128}) {
    for (const int n : {1, 2, 3, 4, 5, 33}) {
      quant::QuantizedMatrix m(dim);
      std::vector<int8_t> row(dim);
      for (int i = 0; i < n; ++i) {
        for (int8_t& v : row) {
          v = static_cast<int8_t>(rng.UniformInt(-128, 127));
        }
        m.Append(row.data());
      }
      std::vector<int8_t> query(dim);
      for (int8_t& v : query) {
        v = static_cast<int8_t>(rng.UniformInt(-128, 127));
      }
      AlignedVector<float> scale_sq(dim);
      for (int j = 0; j < dim; ++j) {
        const float s = static_cast<float>(rng.Uniform(1e-3, 0.1));
        scale_sq[j] = s * s;
      }

      std::vector<double> out(n, -1.0);
      kernels::QuantizedL2Scan(m.data(), query.data(), scale_sq.data(), n,
                               dim, m.stride(), out.data());
      for (int i = 0; i < n; ++i) {
        const double want = Oracle(m.row(i), query.data(), scale_sq.data(),
                                   dim);
        EXPECT_NEAR(out[i], want, 1e-9 * (1.0 + std::abs(want)))
            << "isa=" << GetParam() << " dim=" << dim << " n=" << n
            << " row=" << i;
      }
    }
  }
}

/// All-saturated rows exercise the extreme |diff| = 255 case the AVX2 path
/// squares in float (exact: 255² < 2²⁴) — the result must still be exact
/// per term.
TEST_P(QuantKernelIsaTest, ExtremeInt8RangeStaysExactPerTerm) {
  ScopedKernelIsa pin(isa_);
  const int dim = 40;
  quant::QuantizedMatrix m(dim);
  std::vector<int8_t> lo(dim, -128);
  std::vector<int8_t> hi(dim, 127);
  m.Append(lo.data());
  m.Append(hi.data());
  AlignedVector<float> scale_sq(dim);
  for (int j = 0; j < dim; ++j) scale_sq[j] = 1.0f;

  std::vector<double> out(2, 0.0);
  kernels::QuantizedL2Scan(m.data(), hi.data(), scale_sq.data(), 2, dim,
                           m.stride(), out.data());
  EXPECT_NEAR(out[0], static_cast<double>(dim) * 255.0 * 255.0, 1e-6);
  EXPECT_EQ(out[1], 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllIsas, QuantKernelIsaTest,
                         ::testing::Values("scalar", "sse2", "avx2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace traj2hash::search
