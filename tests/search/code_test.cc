#include "search/code.h"

#include <gtest/gtest.h>

namespace traj2hash::search {
namespace {

TEST(CodeTest, PackSignsBitLayout) {
  const Code c = PackSigns({1.0f, -2.0f, 0.5f, 0.0f});
  EXPECT_EQ(c.num_bits, 4);
  ASSERT_EQ(c.words.size(), 1u);
  // Bits: +,-,+,- (zero maps to -1 per Eq. 16).
  EXPECT_EQ(c.words[0], 0b0101ull);
}

TEST(CodeTest, PackSignsMultiWord) {
  std::vector<float> v(130, 1.0f);
  v[64] = -1.0f;
  const Code c = PackSigns(v);
  EXPECT_EQ(c.num_bits, 130);
  ASSERT_EQ(c.words.size(), 3u);
  EXPECT_EQ(c.words[0], ~0ull);
  EXPECT_EQ(c.words[1] & 1ull, 0ull);
}

TEST(CodeTest, HammingDistanceBasics) {
  const Code a = PackSigns({1, 1, -1, -1});
  const Code b = PackSigns({1, -1, 1, -1});
  EXPECT_EQ(HammingDistance(a, a), 0);
  EXPECT_EQ(HammingDistance(a, b), 2);
  EXPECT_EQ(HammingDistance(b, a), 2);
}

TEST(CodeTest, HammingEqualsHalfDimMinusInnerProduct) {
  // The paper's identity: H(z1, z2) = (d_h - <z1, z2>) / 2 over +-1 vectors.
  const std::vector<float> v1 = {1, -1, 1, 1, -1, 1, -1, -1};
  const std::vector<float> v2 = {1, 1, -1, 1, -1, -1, -1, 1};
  auto sign = [](float x) { return x > 0.0f ? 1 : -1; };
  int dot = 0;
  for (size_t i = 0; i < v1.size(); ++i) dot += sign(v1[i]) * sign(v2[i]);
  const int expected = (static_cast<int>(v1.size()) - dot) / 2;
  EXPECT_EQ(HammingDistance(PackSigns(v1), PackSigns(v2)), expected);
}

TEST(CodeTest, HashEqualCodesEqualHashes) {
  const Code a = PackSigns({1, -1, 1});
  const Code b = PackSigns({1, -1, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(CodeHash(a), CodeHash(b));
}

TEST(CodeTest, HashDiffersForDifferentCodes) {
  const Code a = PackSigns({1, -1, 1, 1});
  const Code b = PackSigns({1, -1, 1, -1});
  EXPECT_NE(CodeHash(a), CodeHash(b));  // overwhelmingly likely by design
}

TEST(CodeDeathTest, HammingRequiresEqualWidth) {
  const Code a = PackSigns({1, 1});
  const Code b = PackSigns({1, 1, 1});
  EXPECT_DEATH(HammingDistance(a, b), "CHECK");
}

}  // namespace
}  // namespace traj2hash::search
