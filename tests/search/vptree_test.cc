#include "search/vptree.h"

#include <gtest/gtest.h>

#include "search/knn.h"

namespace traj2hash::search {
namespace {

std::vector<std::vector<float>> RandomDb(int n, int d, Rng& rng) {
  std::vector<std::vector<float>> db(n, std::vector<float>(d));
  for (auto& row : db) {
    for (float& v : row) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return db;
}

class VpTreeParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(VpTreeParamTest, MatchesBruteForceExactly) {
  const auto [n, k] = GetParam();
  Rng rng(11);
  const auto db = RandomDb(n, 8, rng);
  Rng tree_rng(12);
  const VpTree tree(db, tree_rng);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<float> q(8);
    for (float& v : q) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    const auto fast = tree.TopK(q, k);
    const auto brute = TopKEuclidean(db, q, k);
    ASSERT_EQ(fast.size(), brute.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].index, brute[i].index) << "pos " << i;
      EXPECT_NEAR(fast[i].distance, brute[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKs, VpTreeParamTest,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 5}, std::pair{50, 1},
                      std::pair{200, 10}, std::pair{500, 50}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "_k" +
             std::to_string(info.param.second);
    });

TEST(VpTreeTest, PrunesInLowDimensions) {
  // In 2-D, triangle-inequality pruning must beat the linear scan clearly.
  Rng rng(13);
  const auto db = RandomDb(4000, 2, rng);
  Rng tree_rng(14);
  const VpTree tree(db, tree_rng);
  std::vector<float> q = {0.1f, -0.3f};
  const auto result = tree.TopK(q, 5);
  EXPECT_EQ(result.size(), 5u);
  EXPECT_LT(tree.last_distance_evals(), 4000 / 2)
      << "expected >2x pruning in 2-D";
}

TEST(VpTreeTest, DuplicatePointsAllRetrievable) {
  std::vector<std::vector<float>> db = {{1.0f}, {1.0f}, {1.0f}, {5.0f}};
  Rng rng(15);
  const VpTree tree(db, rng);
  const auto top3 = tree.TopK({1.0f}, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].index, 0);  // tie-break by index, like TopKEuclidean
  EXPECT_EQ(top3[1].index, 1);
  EXPECT_EQ(top3[2].index, 2);
}

TEST(VpTreeTest, KLargerThanSizeClamps) {
  Rng rng(16);
  const VpTree tree(RandomDb(3, 4, rng), rng);
  EXPECT_EQ(tree.TopK(std::vector<float>(4, 0.0f), 10).size(), 3u);
}

TEST(VpTreeDeathTest, MixedWidthsRejected) {
  Rng rng(17);
  std::vector<std::vector<float>> db = {{1.0f, 2.0f}, {1.0f}};
  EXPECT_DEATH(VpTree(db, rng), "CHECK");
}

}  // namespace
}  // namespace traj2hash::search
