// Flat storage + scan kernel tests: PackedCodes / FlatMatrix round-trips and
// the determinism contract of search::kernels — the Hamming scan must equal
// the scalar per-pair popcount exactly, and the 4-row-blocked L2 scan must be
// bit-identical to the seed's per-row ascending-order double accumulation
// (which the nested-vector TopKEuclidean overload still embodies).

#include "search/kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "search/flat_storage.h"
#include "search/knn.h"

namespace traj2hash::search {
namespace {

Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return PackSigns(v);
}

TEST(PackedCodesTest, RoundTripsCodes) {
  Rng rng(11);
  std::vector<Code> codes;
  for (int i = 0; i < 20; ++i) codes.push_back(RandomCode(96, rng));
  const PackedCodes packed = PackedCodes::FromCodes(codes);
  EXPECT_EQ(packed.size(), 20);
  EXPECT_EQ(packed.num_bits(), 96);
  EXPECT_EQ(packed.words_per_code(), 2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(packed.CodeAt(i), codes[i]) << i;
  }
}

TEST(PackedCodesDeathTest, RejectsWidthMismatch) {
  Rng rng(12);
  PackedCodes packed(32);
  EXPECT_DEATH(packed.Append(RandomCode(64, rng)), "CHECK");
}

TEST(FlatMatrixTest, RoundTripsRows) {
  FlatMatrix m(3);
  EXPECT_EQ(m.Append({1.0f, 2.0f, 3.0f}), 0);
  EXPECT_EQ(m.Append({4.0f, 5.0f, 6.0f}), 1);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.RowAt(1), (std::vector<float>{4.0f, 5.0f, 6.0f}));
  EXPECT_EQ(m.row(1)[0], 4.0f);
}

TEST(FlatMatrixDeathTest, RejectsRaggedRow) {
  FlatMatrix m(3);
  EXPECT_DEATH(m.Append({1.0f}), "CHECK");
}

/// Sweeps every unrolled word width (1..4 words) plus the generic tail.
TEST(HammingScanTest, MatchesScalarDistanceAtAllWordWidths) {
  Rng rng(13);
  for (const int bits : {17, 64, 100, 128, 192, 256, 320}) {
    std::vector<Code> codes;
    for (int i = 0; i < 33; ++i) codes.push_back(RandomCode(bits, rng));
    const PackedCodes packed = PackedCodes::FromCodes(codes);
    const Code query = RandomCode(bits, rng);
    std::vector<int32_t> out(codes.size());
    kernels::HammingScan(packed.data(), query.words.data(), packed.size(),
                         packed.words_per_code(), packed.stride_words(),
                         out.data());
    for (size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(out[i], HammingDistance(codes[i], query)) << bits << ":" << i;
      EXPECT_EQ(kernels::HammingDistanceRow(packed.row(static_cast<int>(i)),
                                            query.words.data(),
                                            packed.words_per_code()),
                out[i]);
    }
  }
}

/// The 4-row blocking must not change a single bit of any distance: each
/// row keeps one double accumulator in ascending column order.
TEST(SquaredL2ScanTest, BitIdenticalToSeedAccumulationOrder) {
  // The seed accumulation order is the SCALAR backend's contract; SIMD
  // backends have their own fixed orders (tests/search/kernels_isa_test.cc).
  ScopedKernelIsa pin(KernelIsa::kScalar);
  Rng rng(14);
  for (const int n : {1, 3, 4, 9, 32}) {
    const int dim = 24;
    std::vector<float> db(static_cast<size_t>(n) * dim);
    std::vector<float> query(dim);
    for (float& v : db) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    for (float& v : query) v = static_cast<float>(rng.Uniform(-2.0, 2.0));

    std::vector<double> got(n);
    kernels::SquaredL2Scan(db.data(), query.data(), n, dim, dim, got.data());
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;  // the seed loop, transcribed
      for (int j = 0; j < dim; ++j) {
        const double diff =
            static_cast<double>(db[static_cast<size_t>(i) * dim + j]) -
            query[j];
        acc += diff * diff;
      }
      EXPECT_EQ(got[i], acc) << n << ":" << i;
    }
  }
}

TEST(TopKFlatOverloadTest, EuclideanFlatMatchesNestedBitForBit) {
  Rng rng(15);
  const int n = 40, dim = 16;
  std::vector<std::vector<float>> nested(n, std::vector<float>(dim));
  std::vector<float> query(dim);
  for (auto& row : nested) {
    for (float& v : row) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  for (float& v : query) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  const FlatMatrix flat = FlatMatrix::FromRows(nested, dim);

  const auto from_flat = TopKEuclidean(flat, query, 7);
  const auto from_nested = TopKEuclidean(nested, query, 7);
  ASSERT_EQ(from_flat.size(), from_nested.size());
  for (size_t i = 0; i < from_flat.size(); ++i) {
    EXPECT_EQ(from_flat[i].index, from_nested[i].index);
    EXPECT_EQ(from_flat[i].distance, from_nested[i].distance);
  }
}

TEST(TopKFlatOverloadTest, HammingPackedMatchesUnpacked) {
  Rng rng(16);
  std::vector<Code> codes;
  for (int i = 0; i < 50; ++i) codes.push_back(RandomCode(72, rng));
  const PackedCodes packed = PackedCodes::FromCodes(codes);
  const Code query = RandomCode(72, rng);
  const auto from_packed = TopKHamming(packed, query, 9);
  const auto from_codes = TopKHamming(codes, query, 9);
  ASSERT_EQ(from_packed.size(), from_codes.size());
  for (size_t i = 0; i < from_packed.size(); ++i) {
    EXPECT_EQ(from_packed[i].index, from_codes[i].index);
    EXPECT_EQ(from_packed[i].distance, from_codes[i].distance);
  }
}

}  // namespace
}  // namespace traj2hash::search
