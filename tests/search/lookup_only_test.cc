// Tests for the footnote-5 pure table-lookup strategy and radius probing.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/hamming_index.h"

namespace traj2hash::search {
namespace {

Code FromBits(std::initializer_list<int> ones, int bits) {
  std::vector<float> v(bits, -1.0f);
  for (const int b : ones) v[b] = 1.0f;
  return PackSigns(v);
}

TEST(ProbeAtRadiusTest, RadiusZeroIsExactBucket) {
  const Code a = FromBits({0, 3}, 8);
  const Code b = FromBits({0, 3, 5}, 8);
  HammingIndex index({a, b, a});
  std::vector<int> hits = index.ProbeAtRadius(a, 0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{0, 2}));
}

TEST(ProbeAtRadiusTest, FindsCodesAtExactDistance) {
  const Code center = FromBits({}, 10);
  std::vector<Code> db;
  // One code at each distance 0..4.
  db.push_back(center);
  db.push_back(FromBits({1}, 10));
  db.push_back(FromBits({1, 2}, 10));
  db.push_back(FromBits({1, 2, 3}, 10));
  db.push_back(FromBits({1, 2, 3, 4}, 10));
  HammingIndex index(db);
  for (int r = 0; r <= 4; ++r) {
    const std::vector<int> hits = index.ProbeAtRadius(center, r);
    ASSERT_EQ(hits.size(), 1u) << "radius " << r;
    EXPECT_EQ(hits[0], r);
  }
}

TEST(ProbeAtRadiusTest, ProbeCountMatchesBinomial) {
  // Probing can only find codes at exactly the radius; verify exhaustiveness
  // by planting all C(5,2)=10 codes at distance 2 of a 5-bit center.
  const int bits = 5;
  const Code center = FromBits({}, bits);
  std::vector<Code> db;
  for (int b1 = 0; b1 < bits; ++b1) {
    for (int b2 = b1 + 1; b2 < bits; ++b2) {
      db.push_back(FromBits({b1, b2}, bits));
    }
  }
  HammingIndex index(db);
  EXPECT_EQ(index.ProbeAtRadius(center, 2).size(), 10u);
  EXPECT_TRUE(index.ProbeAtRadius(center, 1).empty());
}

TEST(LookupOnlyTest, StopsAtFirstRadiusWithKCandidates) {
  const Code q = FromBits({}, 12);
  std::vector<Code> db = {FromBits({0}, 12), FromBits({1}, 12),
                          FromBits({0, 1, 2}, 12)};
  HammingIndex index(db);
  const auto top2 = index.LookupOnlyTopK(q, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].distance, 1.0);
  EXPECT_EQ(top2[1].distance, 1.0);
}

TEST(LookupOnlyTest, MatchesBruteForceWhenUncapped) {
  Rng rng(3);
  std::vector<Code> db;
  for (int i = 0; i < 60; ++i) {
    std::vector<float> v(16);
    for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    db.push_back(PackSigns(v));
  }
  HammingIndex index(db);
  std::vector<float> qv(16);
  for (float& x : qv) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  const Code q = PackSigns(qv);
  const auto lookup = index.LookupOnlyTopK(q, 5);
  const auto brute = index.BruteForceTopK(q, 5);
  ASSERT_EQ(lookup.size(), brute.size());
  for (size_t i = 0; i < lookup.size(); ++i) {
    EXPECT_EQ(lookup[i].distance, brute[i].distance) << i;
  }
}

TEST(LookupOnlyTest, RadiusCapMayReturnFewer) {
  const Code q = FromBits({}, 12);
  std::vector<Code> db = {FromBits({0, 1, 2, 3, 4}, 12)};  // distance 5
  HammingIndex index(db);
  EXPECT_TRUE(index.LookupOnlyTopK(q, 1, /*max_radius=*/2).empty());
  EXPECT_EQ(index.LookupOnlyTopK(q, 1, /*max_radius=*/5).size(), 1u);
}

}  // namespace
}  // namespace traj2hash::search
