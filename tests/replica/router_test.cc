// Unit tests for the health-aware read router (replica::ReadRouter):
// round-robin spread over healthy replicas, automatic failover when a
// replica dies mid-query (faults::kReplicaDown), the all-down error path,
// router-level admission control, the staleness bound (lagging replicas
// demoted and self-re-admitted), zero-downtime rolling restart, and a
// multi-threaded rolling-restart-under-churn stress (the tsan lane's
// replica failover stress test — see tools/check.sh).
#include "replica/router.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "replica/replica.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::replica {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

/// A primary plus `n` bootstrapped healthy replicas behind a router.
struct Group {
  Group(const std::string& tag, int n, int count,
        ReadRouterOptions router_options = ReadRouterOptions{})
      : index(3, 16), wal_path(TempPath(tag + ".wal")), rng(23) {
    EXPECT_TRUE(index.AttachWal(wal_path).ok());
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(index.Insert(RandomCode(16, rng), {}).ok());
    }
    primary = std::make_unique<Primary>(&index, wal_path);
    for (int i = 0; i < n; ++i) {
      replicas.push_back(std::make_unique<Replica>(
          primary.get(), ReplicaOptions{}, tag + "-r" + std::to_string(i)));
      EXPECT_TRUE(
          replicas.back()->Bootstrap(TempPath(tag + ".boot.snap")).ok());
    }
    std::vector<Replica*> members;
    for (const auto& r : replicas) members.push_back(r.get());
    router = std::make_unique<ReadRouter>(members, router_options);
  }

  serve::ShardedIndex index;
  std::string wal_path;
  Rng rng;
  std::unique_ptr<Primary> primary;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::unique_ptr<ReadRouter> router;
};

TEST(ReadRouterTest, SpreadsQueriesRoundRobin) {
  Group g("router_spread", 3, 40);
  for (int q = 0; q < 30; ++q) {
    const RoutedRead read = g.router->Query(RandomCode(16, g.rng), 5);
    ASSERT_TRUE(read.status.ok()) << read.status.ToString();
    EXPECT_EQ(read.attempts, 1);
  }
  // Perfect rotation: every replica answered exactly a third of the load.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(g.router->routed_to(i), 10);
  }
  EXPECT_EQ(g.router->failovers(), 0);
}

TEST(ReadRouterTest, ResultsMatchThePrimary) {
  Group g("router_exact", 2, 50);
  for (int q = 0; q < 10; ++q) {
    const search::Code code = RandomCode(16, g.rng);
    const auto want = g.index.QueryTopK(code, 10);
    const RoutedRead read = g.router->Query(code, 10);
    ASSERT_TRUE(read.status.ok());
    ASSERT_EQ(read.neighbors.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(read.neighbors[i].index, want[i].index);
      EXPECT_EQ(read.neighbors[i].distance, want[i].distance);
    }
  }
}

TEST(ReadRouterTest, FailsOverWhenAReplicaDiesMidQuery) {
  Group g("router_failover", 3, 30);
  // The first routed query kills its replica at entry; the router must
  // retry onto a survivor and still answer, then never route back.
  FaultInjector fi;
  fi.Arm(faults::kReplicaDown, /*skip=*/0, /*fire=*/1);
  FaultInjector::Scope scope(&fi);
  for (int q = 0; q < 20; ++q) {
    const RoutedRead read = g.router->Query(RandomCode(16, g.rng), 5);
    ASSERT_TRUE(read.status.ok()) << "query " << q << ": "
                                  << read.status.ToString();
  }
  EXPECT_EQ(g.router->failovers(), 1);
  // Exactly one replica took the hit and went down.
  int down = 0;
  for (const auto& r : g.replicas) {
    down += r->state() == ReplicaState::kDown ? 1 : 0;
  }
  EXPECT_EQ(down, 1);
}

TEST(ReadRouterTest, AllDownIsUnavailable) {
  Group g("router_alldown", 2, 10);
  for (auto& r : g.replicas) r->SimulateCrash();
  const RoutedRead read = g.router->Query(RandomCode(16, g.rng), 5);
  EXPECT_EQ(read.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(read.replica, -1);
  EXPECT_TRUE(read.neighbors.empty());
}

TEST(ReadRouterTest, MarkDownTakesAReplicaOutOfRotation) {
  Group g("router_markdown", 2, 20);
  g.router->MarkDown(0);
  EXPECT_FALSE(g.router->IsRoutable(0));
  for (int q = 0; q < 6; ++q) {
    const RoutedRead read = g.router->Query(RandomCode(16, g.rng), 5);
    ASSERT_TRUE(read.status.ok());
    EXPECT_EQ(read.replica, 1);
  }
  g.router->MarkHealthy(0);
  EXPECT_TRUE(g.router->IsRoutable(0));
}

TEST(ReadRouterTest, AdmissionShedsWhenTheGroupIsSaturated) {
  ReadRouterOptions options;
  options.queue_depth = 1;
  Group g("router_admission", 2, 20, options);
  // Pin one query inside a replica with a gate on the kReplicaDown point
  // (gates block, then pass). A second query arriving behind it must be
  // shed by router admission, not queued.
  FaultInjector fi;
  fi.ArmGate(faults::kReplicaDown);
  FaultInjector::Scope scope(&fi);

  std::atomic<bool> first_done{false};
  std::thread pinned([&] {
    const RoutedRead read = g.router->Query(RandomCode(16, g.rng), 5);
    EXPECT_TRUE(read.status.ok());
    first_done.store(true);
  });
  // Wait until the pinned query holds the admission slot (it blocks inside
  // the gate with the slot claimed).
  while (fi.hits(faults::kReplicaDown) == 0) std::this_thread::yield();
  Rng rng2(99);
  const RoutedRead shed = g.router->Query(RandomCode(16, rng2), 5);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(g.router->shed_count(), 1);
  fi.OpenGate(faults::kReplicaDown);
  pinned.join();
  EXPECT_TRUE(first_done.load());
}

TEST(ReadRouterTest, RollingRestartDropsNothing) {
  Group g("router_rolling", 2, 40);
  // Restart replica 0 through the router while nothing else runs: the
  // sequencing alone must leave it healthy, caught up and routable.
  ASSERT_TRUE(
      g.router->RollingRestart(0, TempPath("router_rolling.ckpt")).ok());
  EXPECT_TRUE(g.router->IsRoutable(0));
  EXPECT_EQ(g.replicas[0]->state(), ReplicaState::kHealthy);
  EXPECT_EQ(g.replicas[0]->applied_seq(), g.primary->committed_seq());
}

// The tsan-lane stress: queries hammer the router from two threads while a
// third thread rolling-restarts each replica in turn and a fourth keeps the
// primary committing. Zero queries may fail — there is always at least one
// healthy replica — and afterwards both replicas converge to the primary.
TEST(ReadRouterTest, RollingRestartUnderChurnStress) {
  Group g("router_stress", 2, 60);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> failed{0};

  // Continuous shipping keeps both replicas near the tip.
  std::thread shipper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& r : g.replicas) {
        if (r->state() != ReplicaState::kDown) (void)r->PollApplyOnce();
      }
      std::this_thread::yield();
    }
  });
  std::thread mutator([&] {
    Rng rng(31);
    while (!stop.load(std::memory_order_acquire)) {
      (void)g.index.Insert(RandomCode(16, rng), {});
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const RoutedRead read = g.router->Query(RandomCode(16, rng), 5);
        if (!read.status.ok()) failed.fetch_add(1);
      }
    });
  }
  // Roll through the whole group, one replica at a time.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < g.router->num_replicas(); ++i) {
      ASSERT_TRUE(g.router
                      ->RollingRestart(i, TempPath("router_stress.ckpt"))
                      .ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  mutator.join();
  shipper.join();

  EXPECT_EQ(failed.load(), 0) << "rolling restarts dropped queries";
  for (auto& r : g.replicas) {
    ASSERT_TRUE(r->CatchUp().ok());
    EXPECT_EQ(r->applied_seq(), g.primary->committed_seq());
  }
  Rng rng(7);
  for (int q = 0; q < 5; ++q) {
    const search::Code code = RandomCode(16, rng);
    const auto want = g.index.QueryTopK(code, 10);
    for (auto& r : g.replicas) {
      const auto got = r->Query(code, 10);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.value()[i].index, want[i].index);
        EXPECT_EQ(got.value()[i].distance, want[i].distance);
      }
    }
  }
}

TEST(ReadRouterTest, StalenessBoundDemotesAndReadmitsLaggingReplicas) {
  ReadRouterOptions options;
  options.max_lag_records = 5;
  Group g("router_stale", 2, 20, options);
  EXPECT_TRUE(g.router->IsFresh(0));
  EXPECT_TRUE(g.router->IsFresh(1));

  // Commit past the bound without shipping: both replicas now lag by 10.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.index.Insert(RandomCode(16, g.rng), {}).ok());
  }
  EXPECT_FALSE(g.router->IsFresh(0));
  EXPECT_FALSE(g.router->IsFresh(1));
  // Every replica is over the bound: the bound is a promise, so the read
  // fails instead of serving a state 10 records behind the primary.
  const RoutedRead stale = g.router->Query(RandomCode(16, g.rng), 5);
  EXPECT_EQ(stale.status.code(), StatusCode::kUnavailable);
  EXPECT_GE(g.router->stale_demotions(), 2);

  // Only replica 1 catches up: all traffic lands there.
  ASSERT_TRUE(g.replicas[1]->CatchUp().ok());
  for (int q = 0; q < 6; ++q) {
    const RoutedRead read = g.router->Query(RandomCode(16, g.rng), 5);
    ASSERT_TRUE(read.status.ok()) << read.status.ToString();
    EXPECT_EQ(read.replica, 1);
  }
  EXPECT_EQ(g.router->routed_to(0), 0);

  // Replica 0 re-admits itself by catching up — no operator action.
  ASSERT_TRUE(g.replicas[0]->CatchUp().ok());
  EXPECT_TRUE(g.router->IsFresh(0));
  for (int q = 0; q < 6; ++q) {
    ASSERT_TRUE(g.router->Query(RandomCode(16, g.rng), 5).status.ok());
  }
  EXPECT_GT(g.router->routed_to(0), 0);
}

TEST(ReadRouterTest, StalenessTimeBoundDemotesAReplicaStuckBehind) {
  ReadRouterOptions options;
  options.max_lag_ms = 10.0;
  Group g("router_stale_ms", 1, 10, options);
  // One unapplied record is fine at first — the clock, not the count, is
  // the bound here — but a replica stuck behind it goes stale as time
  // passes.
  ASSERT_TRUE(g.index.Insert(RandomCode(16, g.rng), {}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(g.router->IsFresh(0));
  EXPECT_EQ(g.router->Query(RandomCode(16, g.rng), 5).status.code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(g.replicas[0]->CatchUp().ok());
  EXPECT_TRUE(g.router->IsFresh(0));
  EXPECT_TRUE(g.router->Query(RandomCode(16, g.rng), 5).status.ok());
}

TEST(ReadRouterTest, NoStalenessBoundNeverDemotes) {
  Group g("router_nobound", 2, 10);  // default options: no bound
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.index.Insert(RandomCode(16, g.rng), {}).ok());
  }
  EXPECT_TRUE(g.router->IsFresh(0));
  EXPECT_TRUE(g.router->Query(RandomCode(16, g.rng), 5).status.ok());
  EXPECT_EQ(g.router->stale_demotions(), 0);
}

}  // namespace
}  // namespace traj2hash::replica
