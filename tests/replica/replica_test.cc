// Unit tests for the replica role (replica::Replica): snapshot bootstrap +
// log-tail catch-up yields a state bit-identical to the primary's — across
// different shard counts — continuous shipping tracks live mutations, lag
// accounting, the kReplicaApply fault marks the replica down and a restart
// recovers it, and a checkpoint+restart converges while the primary keeps
// committing.
#include "replica/replica.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::replica {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

/// A WAL-attached primary index pre-filled with `count` random 16-bit codes.
struct Env {
  Env(const std::string& tag, int count, int primary_shards = 3)
      : index(primary_shards, 16),
        wal_path(TempPath(tag + ".wal")),
        rng(17) {
    EXPECT_TRUE(index.AttachWal(wal_path).ok());
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(index.Insert(RandomCode(16, rng), {}).ok());
    }
    primary = std::make_unique<Primary>(&index, wal_path);
  }

  serve::ShardedIndex index;
  std::string wal_path;
  Rng rng;
  std::unique_ptr<Primary> primary;
};

/// Expects both sides to return the same (distance, id) sequence.
void ExpectIdentical(const serve::ShardedIndex& want_index, Replica& replica,
                     Rng& rng, int probes = 8, int k = 10) {
  for (int q = 0; q < probes; ++q) {
    const search::Code code = RandomCode(16, rng);
    const auto want = want_index.QueryTopK(code, k);
    const auto got = replica.Query(code, k);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.value()[i].index, want[i].index);
      EXPECT_EQ(got.value()[i].distance, want[i].distance);
    }
  }
}

TEST(ReplicaTest, BootstrapCatchesUpBitIdentical) {
  Env env("replica_boot", 60);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  EXPECT_EQ(replica.state(), ReplicaState::kEmpty);
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_boot.snap")).ok());
  EXPECT_EQ(replica.state(), ReplicaState::kHealthy);
  EXPECT_EQ(replica.applied_seq(), env.primary->committed_seq());
  EXPECT_EQ(replica.lag_records(), 0);
  ExpectIdentical(env.index, replica, env.rng);
}

TEST(ReplicaTest, ShardCountIndependentOfPrimary) {
  Env env("replica_shards", 50, /*primary_shards=*/3);
  for (const int shards : {1, 4, 7}) {
    ReplicaOptions options;
    options.num_shards = shards;
    Replica replica(env.primary.get(), options,
                    "r" + std::to_string(shards));
    ASSERT_TRUE(
        replica.Bootstrap(TempPath("replica_shards.snap")).ok());
    ExpectIdentical(env.index, replica, env.rng);
  }
}

TEST(ReplicaTest, ContinuousShippingTracksMutations) {
  Env env("replica_ship", 30);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_ship.snap")).ok());

  // Primary keeps mutating after the bootstrap: inserts, removes, updates.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  ASSERT_TRUE(env.index.Remove(5).ok());
  ASSERT_TRUE(env.index.Update(7, RandomCode(16, env.rng), {}).ok());
  EXPECT_GT(replica.lag_records(), 0);

  // One ship round closes the gap.
  const auto applied = replica.PollApplyOnce();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value(), 22);
  EXPECT_EQ(replica.lag_records(), 0);
  EXPECT_EQ(replica.applied_seq(), env.primary->committed_seq());
  ExpectIdentical(env.index, replica, env.rng);
}

TEST(ReplicaTest, QueryBeforeBootstrapIsUnavailable) {
  Env env("replica_unboot", 10);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  const auto got = replica.Query(RandomCode(16, env.rng), 5);
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(ReplicaTest, ApplyFaultMarksDownAndBootstrapRecovers) {
  Env env("replica_applyfault", 20);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_applyfault.snap")).ok());
  ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());

  {
    FaultInjector fi;
    fi.Arm(faults::kReplicaApply, /*skip=*/0, /*fire=*/1);
    FaultInjector::Scope scope(&fi);
    const auto applied = replica.PollApplyOnce();
    EXPECT_FALSE(applied.ok());
    EXPECT_EQ(replica.state(), ReplicaState::kDown);
  }
  // Down replicas refuse reads and further shipping...
  EXPECT_EQ(replica.Query(RandomCode(16, env.rng), 5).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(replica.PollApplyOnce().status().code(),
            StatusCode::kFailedPrecondition);
  // ...until a fresh bootstrap brings them back, fully caught up.
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_applyfault2.snap")).ok());
  EXPECT_EQ(replica.state(), ReplicaState::kHealthy);
  ExpectIdentical(env.index, replica, env.rng);
}

TEST(ReplicaTest, SimulateCrashDropsStateAndRestartRebuilds) {
  Env env("replica_crash", 25);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  const std::string checkpoint = TempPath("replica_crash.ckpt");
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_crash.snap")).ok());
  ASSERT_TRUE(replica.Checkpoint(checkpoint).ok());

  replica.SimulateCrash();
  EXPECT_EQ(replica.state(), ReplicaState::kDown);
  EXPECT_EQ(replica.Query(RandomCode(16, env.rng), 5).status().code(),
            StatusCode::kUnavailable);

  // The primary moves on while the replica is dead.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  // Restart from the replica's own checkpoint: the log tail replayed over
  // it covers both the checkpoint overlap and the missed mutations.
  ASSERT_TRUE(replica.Restart(checkpoint).ok());
  EXPECT_EQ(replica.state(), ReplicaState::kHealthy);
  EXPECT_EQ(replica.applied_seq(), env.primary->committed_seq());
  ExpectIdentical(env.index, replica, env.rng);
}

TEST(ReplicaTest, RestartWithoutCheckpointReplaysFromScratch) {
  Env env("replica_scratch", 15);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_scratch.snap")).ok());
  replica.SimulateCrash();
  // A missing checkpoint file degrades to a full log replay (the log has
  // never been checkpointed away, so it still holds every record).
  ASSERT_TRUE(replica.Restart(TempPath("replica_scratch_missing.ckpt")).ok());
  EXPECT_EQ(replica.state(), ReplicaState::kHealthy);
  ExpectIdentical(env.index, replica, env.rng);
}

TEST(ReplicaTest, LagAccountingCountsUnappliedRecords) {
  Env env("replica_lag", 10);
  Replica replica(env.primary.get(), ReplicaOptions{}, "r0");
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_lag.snap")).ok());
  EXPECT_EQ(replica.lag_records(), 0);
  EXPECT_EQ(replica.lag_ms(), 0.0);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  EXPECT_EQ(replica.lag_records(), 4);
  ASSERT_TRUE(replica.CatchUp().ok());
  EXPECT_EQ(replica.lag_records(), 0);
  EXPECT_EQ(replica.lag_ms(), 0.0);
}

TEST(ReplicaTest, QuantizedReplicaRequantizesShippedEmbeddings) {
  // A quantize-mode replica of a quantize-mode primary: the bootstrap
  // snapshot (v3) and every WAL record carry FLOAT embeddings, and the
  // replica re-quantizes them under its own per-shard params on apply.
  // Hamming reads keep the bit-identity contract (codes are never
  // quantized); the replica's lattice tracks the originals within its
  // widening/requantization budget, and re-rank reads over it are exact —
  // but NOT claimed bit-identical to the primary's lattice, whose params
  // come from a different calibration history.
  constexpr int kDim = 6;
  Rng rng(450);
  auto random_embedding = [&rng] {
    std::vector<float> e(kDim);
    for (float& x : e) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
    return e;
  };
  serve::ShardedIndex primary_index(3, 16, search::SearchStrategy::kMih, 0,
                                    64, 0.25, /*quantize=*/true, kDim);
  const std::string wal_path = TempPath("replica_quant.wal");
  ASSERT_TRUE(primary_index.AttachWal(wal_path).ok());
  std::vector<std::vector<float>> originals;
  for (int i = 0; i < 40; ++i) {
    originals.push_back(random_embedding());
    ASSERT_TRUE(primary_index.Insert(RandomCode(16, rng), originals[i]).ok());
  }
  Primary primary(&primary_index, wal_path);

  ReplicaOptions options;
  options.num_shards = 2;
  options.quantize = true;
  options.embedding_dim = kDim;
  Replica replica(&primary, options, "rq");
  ASSERT_TRUE(replica.Bootstrap(TempPath("replica_quant.snap")).ok());

  // Live mutations after bootstrap arrive through the WAL tail, not the
  // snapshot — the apply path must re-quantize them too.
  for (int i = 40; i < 70; ++i) {
    originals.push_back(random_embedding());
    ASSERT_TRUE(primary_index.Insert(RandomCode(16, rng), originals[i]).ok());
  }
  ASSERT_TRUE(replica.CatchUp().ok());
  ExpectIdentical(primary_index, replica, rng);

  const auto index = replica.index();
  ASSERT_TRUE(index->quantize());
  EXPECT_GT(index->embedding_resident_bytes(), 0u);
  // Each stored value crosses at most three lattices (primary shard ->
  // snapshot global -> replica shard) and the replica's in-place widenings
  // add ≤ half a step each — ≈ 0.1 covers several steps of 4/255 at this
  // data range.
  for (const int id : {1, 17, 38, 41, 69}) {
    const std::vector<float> back = index->EmbeddingOf(id);
    ASSERT_EQ(back.size(), static_cast<size_t>(kDim)) << id;
    for (int j = 0; j < kDim; ++j) {
      EXPECT_NEAR(back[j], originals[id][j], 0.1f) << "id " << id;
    }
    const auto top =
        index->QueryRerankTopK(RandomCode(16, rng), originals[id], 1, 10000);
    ASSERT_EQ(top.size(), 1u) << id;
    EXPECT_EQ(top[0].index, id);
  }
  EXPECT_EQ(index->rerank_stats().band_violations, 0u);
}

TEST(ReplicaTest, ApplyShippedRefusedOnWalAttachedIndex) {
  // The guard behind the replica contract: an index that logs its own
  // mutations must never accept shipped records, or a checkpoint race could
  // fork the histories.
  Env env("replica_refuse", 5);
  ingest::WalRecord record;
  record.seq = 999;
  record.type = ingest::WalRecordType::kInsert;
  record.id = 100;
  record.code = RandomCode(16, env.rng);
  EXPECT_EQ(env.index.ApplyShipped(record).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace traj2hash::replica
