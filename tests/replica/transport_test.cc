// Tests for the socket WAL-shipping transport (DESIGN.md §16): bootstrap +
// tail over TCP is bit-identical to the in-process path, severed
// connections reconnect at the watermark without re-bootstrapping,
// duplicated/delayed frames are absorbed, a sequence gap is kDataLoss, the
// kNeedBootstrap / log-reset resync state machine mirrors the file cursor's,
// heartbeats detect a wedged peer, and a churn stress survives repeated
// partitions (the TSan lane's socket workload).
#include "replica/transport.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "net/framing.h"
#include "net/socket.h"
#include "replica/replica.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace traj2hash::replica {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

/// A WAL-attached primary pre-filled with `count` random 16-bit codes, plus
/// a running ShipServer on an ephemeral loopback port.
struct Env {
  explicit Env(const std::string& tag, int count,
               ShipServerOptions server_options = {})
      : index(3, 16), wal_path(TempPath(tag + ".wal")), rng(17) {
    EXPECT_TRUE(index.AttachWal(wal_path).ok());
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(index.Insert(RandomCode(16, rng), {}).ok());
    }
    primary = std::make_unique<Primary>(&index, wal_path);
    server = std::make_unique<ShipServer>(primary.get(), server_options);
    EXPECT_TRUE(server->Start().ok());
  }

  /// A replica wired to the server over a SocketTransport.
  std::unique_ptr<Replica> MakeReplica(const std::string& name,
                                       SocketTailerOptions options = {}) {
    return std::make_unique<Replica>(
        primary.get(),
        std::make_unique<SocketTransport>("127.0.0.1", server->port(),
                                          options),
        ReplicaOptions{.num_shards = 2}, name);
  }

  serve::ShardedIndex index;
  std::string wal_path;
  Rng rng;
  std::unique_ptr<Primary> primary;
  std::unique_ptr<ShipServer> server;
};

/// Expects the replica to answer bit-identically to the primary index.
void ExpectIdentical(const serve::ShardedIndex& want_index, Replica& replica,
                     Rng& rng, int probes = 8, int k = 10) {
  for (int q = 0; q < probes; ++q) {
    const search::Code code = RandomCode(16, rng);
    const auto want = want_index.QueryTopK(code, k);
    const auto got = replica.Query(code, k);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.value()[i].index, want[i].index);
      EXPECT_EQ(got.value()[i].distance, want[i].distance);
    }
  }
}

/// Pumps the replica's ship loop until it covers the primary's current
/// commit seq (bounded; each PollApplyOnce waits at most drain_ms).
void PumpUntilCaughtUp(Replica& replica, const Primary& primary,
                       int max_rounds = 400) {
  for (int i = 0; i < max_rounds; ++i) {
    if (replica.applied_seq() >= primary.committed_seq()) return;
    (void)replica.PollApplyOnce();
  }
  FAIL() << "replica stuck at seq " << replica.applied_seq() << " of "
         << primary.committed_seq();
}

TEST(SocketTransportTest, BootstrapAndTailBitIdentical) {
  Env env("sock_boot", 50);
  auto replica = env.MakeReplica("r0");
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_boot.snap")).ok());
  EXPECT_EQ(replica->state(), ReplicaState::kHealthy);
  EXPECT_EQ(replica->applied_seq(), env.primary->committed_seq());
  EXPECT_EQ(replica->transport().counters().snapshots_fetched.load(), 1);
  ExpectIdentical(env.index, *replica, env.rng);

  // Live tail: new commits stream over the socket.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);
  EXPECT_GT(env.server->records_sent(), 0);
}

TEST(SocketTransportTest, ReconnectsAfterSeverWithoutRebootstrap) {
  Env env("sock_sever", 40);
  auto replica = env.MakeReplica("r0");
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_sever.snap")).ok());

  env.server->Sever();  // partition: every live connection dies
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);

  const TransportCounters& counters = replica->transport().counters();
  EXPECT_GE(counters.reconnects.load(), 1);
  // The log still covered the watermark, so reconnecting alone caught up —
  // no second snapshot was fetched.
  EXPECT_EQ(counters.snapshots_fetched.load(), 1);
  EXPECT_EQ(env.server->snapshots_served(), 1);
}

TEST(SocketTransportTest, RefusedConnectionsHealAfterPartitionEnds) {
  Env env("sock_refuse", 30);
  auto replica = env.MakeReplica("r0");
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_refuse.snap")).ok());

  env.server->set_refuse_connections(true);
  env.server->Sever();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  // While partitioned the replica stays healthy on its applied state and
  // polls fail transiently without corrupting anything.
  for (int i = 0; i < 3; ++i) (void)replica->PollApplyOnce();
  EXPECT_EQ(replica->state(), ReplicaState::kHealthy);
  EXPECT_LT(replica->applied_seq(), env.primary->committed_seq());

  env.server->set_refuse_connections(false);
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);
}

TEST(SocketTransportTest, DuplicatedFramesAreAbsorbedByTheWatermark) {
  Env env("sock_dup", 20);
  auto replica = env.MakeReplica("r0");
  FaultInjector fi;
  fi.Arm(faults::kNetDupFrame);  // every record frame is sent twice
  FaultInjector::Scope scope(&fi);
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_dup.snap")).ok());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);
  EXPECT_GT(replica->transport().counters().dup_records.load(), 0);
}

TEST(SocketTransportTest, DelayedFramesOnlyAddLatency) {
  Env env("sock_delay", 20, ShipServerOptions{.heartbeat_ms = 5.0});
  auto replica = env.MakeReplica("r0");
  FaultInjector fi;
  fi.Arm(faults::kNetDelayFrame, 0, 3);  // hold back the first three records
  FaultInjector::Scope scope(&fi);
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_delay.snap")).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);
}

TEST(SocketTransportTest, CheckpointWhileCaughtUpIsLossless) {
  Env env("sock_ckpt", 30);
  auto replica = env.MakeReplica("r0");
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_ckpt.snap")).ok());

  // The primary folds its log into a snapshot (WAL reset) while the replica
  // is caught up, then keeps committing. The server-side cursor rewinds
  // over the reset; the stream stays continuous, so the replica needs
  // neither a re-handshake nor a new snapshot.
  ASSERT_TRUE(env.index.Checkpoint(TempPath("sock_ckpt.primary.snap")).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);
  EXPECT_EQ(replica->transport().counters().snapshots_fetched.load(), 1);
}

TEST(SocketTransportTest, CheckpointWhileLaggingForcesRebootstrap) {
  Env env("sock_lag_ckpt", 30);
  auto replica = env.MakeReplica("r0");
  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_lag_ckpt.snap")).ok());

  // Partition the replica, then reset the log past records it never saw:
  // those records are gone for good, so the tailer must escalate through
  // kFailedPrecondition (Rewind) to kDataLoss (kDown, re-bootstrap).
  env.server->Sever();
  env.server->set_refuse_connections(true);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  ASSERT_TRUE(
      env.index.Checkpoint(TempPath("sock_lag_ckpt.primary.snap")).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(env.index.Insert(RandomCode(16, env.rng), {}).ok());
  }
  env.server->set_refuse_connections(false);

  Status seen;
  for (int i = 0; i < 50 && seen.code() != StatusCode::kDataLoss; ++i) {
    const auto polled = replica->PollApplyOnce();
    if (!polled.ok()) seen = polled.status();
  }
  EXPECT_EQ(seen.code(), StatusCode::kDataLoss) << seen.ToString();
  EXPECT_EQ(replica->state(), ReplicaState::kDown);

  ASSERT_TRUE(replica->Bootstrap(TempPath("sock_lag_ckpt.snap")).ok());
  PumpUntilCaughtUp(*replica, *env.primary);
  ExpectIdentical(env.index, *replica, env.rng);
  EXPECT_EQ(replica->transport().counters().snapshots_fetched.load(), 2);
}

TEST(SocketTransportTest, HeartbeatsCarryTheCommitSeqOnAnIdleStream) {
  Env env("sock_hb", 10, ShipServerOptions{.heartbeat_ms = 2.0});
  SocketTailerOptions options;
  options.drain_ms = 10.0;
  SocketTailer tailer("127.0.0.1", env.server->port(), options);
  std::vector<ingest::WalRecord> records;
  // First poll handshakes and drains the backlog; later polls idle on
  // heartbeats only.
  ASSERT_TRUE(tailer.Poll(&records).ok());
  for (int i = 0; i < 50 && tailer.counters().heartbeats.load() == 0; ++i) {
    ASSERT_TRUE(tailer.Poll(&records).ok());
  }
  EXPECT_GT(tailer.counters().heartbeats.load(), 0);
  EXPECT_EQ(tailer.committed_hint(), env.primary->committed_seq());
  EXPECT_GT(env.server->heartbeats_sent(), 0);
}

// ---------------------------------------------------------------------------
// Fake-server tests: a scripted peer speaking raw frames, for wire
// behaviours the real server never produces.
// ---------------------------------------------------------------------------

/// Runs `script` on every accepted connection in a background thread (the
/// tailer reconnects after a disconnect, so one scripted exchange may span
/// several connections). Stops when the listener is shut down.
class FakeServer {
 public:
  template <typename Script>
  explicit FakeServer(Script script) {
    auto listener = net::Listener::Listen(0);
    EXPECT_TRUE(listener.ok());
    listener_ = std::move(listener).value();
    thread_ = std::thread([this, script = std::move(script)] {
      while (true) {
        auto accepted = listener_.Accept(5000.0);
        if (!accepted.ok()) {
          if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
            continue;
          }
          return;  // shut down
        }
        net::Socket socket = std::move(accepted).value();
        script(socket);
      }
    });
  }
  ~FakeServer() {
    listener_.Shutdown();
    thread_.join();
    listener_.Close();
  }
  int port() const { return listener_.port(); }

 private:
  net::Listener listener_;
  std::thread thread_;
};

ingest::WalRecord MakeRecord(uint64_t seq, int id) {
  ingest::WalRecord record;
  record.seq = seq;
  record.type = ingest::WalRecordType::kRemove;  // smallest valid payload
  record.id = id;
  return record;
}

/// Reads the client's kHello and replies kResume.
void AcceptTail(net::Socket& socket) {
  net::FrameReader reader(&socket);
  net::FrameType type;
  std::string payload;
  ASSERT_TRUE(reader.ReadFrame(&type, &payload, 2000.0).ok());
  ASSERT_EQ(type, net::FrameType::kHello);
  ASSERT_TRUE(net::WriteFrame(socket, net::FrameType::kResume, std::string(),
                              2000.0)
                  .ok());
}

TEST(SocketTailerProtocolTest, SequenceGapOnTheWireIsDataLoss) {
  FakeServer server([](net::Socket& socket) {
    AcceptTail(socket);
    // seq 1 then seq 3: a record the client never saw fell out of the
    // stream, which no reconnect can repair.
    for (const uint64_t seq : {uint64_t{1}, uint64_t{3}}) {
      ASSERT_TRUE(net::WriteFrame(socket, net::FrameType::kRecord,
                                  ingest::EncodeWalRecord(MakeRecord(seq, 7)),
                                  2000.0)
                      .ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  SocketTailerOptions options;
  options.drain_ms = 200.0;
  SocketTailer tailer("127.0.0.1", server.port(), options);
  std::vector<ingest::WalRecord> records;
  Status polled = tailer.Poll(&records);
  // Depending on arrival timing the gap shows up in the first or a later
  // drain; either way it must surface as kDataLoss with record 1 intact.
  for (int i = 0; i < 5 && polled.ok(); ++i) polled = tailer.Poll(&records);
  EXPECT_EQ(polled.code(), StatusCode::kDataLoss) << polled.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST(SocketTailerProtocolTest, NeedBootstrapSurfacesOnceThenCondemns) {
  // Every connection's handshake is refused with kNeedBootstrap; the
  // tailer reconnects in between, so the script runs once per connection.
  FakeServer server([](net::Socket& socket) {
    net::FrameReader reader(&socket);
    net::FrameType type;
    std::string payload;
    if (!reader.ReadFrame(&type, &payload, 5000.0).ok()) return;
    (void)net::WriteFrame(socket, net::FrameType::kNeedBootstrap,
                          std::string(), 2000.0);
  });
  SocketTailerOptions options;
  options.drain_ms = 5.0;
  SocketTailer tailer("127.0.0.1", server.port(), options);
  std::vector<ingest::WalRecord> records;
  // First report: the log-was-reset signal the Replica answers with
  // Rewind + re-poll.
  EXPECT_EQ(tailer.Poll(&records).code(), StatusCode::kFailedPrecondition);
  // The Rewind did not help (the server still refuses): data is gone.
  EXPECT_EQ(tailer.Poll(&records).code(), StatusCode::kDataLoss);
}

TEST(SocketTailerProtocolTest, CorruptFrameResyncsInsteadOfCondemning) {
  FakeServer server([](net::Socket& socket) {
    AcceptTail(socket);
    // One valid record, then garbage that fails the frame CRC.
    ASSERT_TRUE(net::WriteFrame(socket, net::FrameType::kRecord,
                                ingest::EncodeWalRecord(MakeRecord(1, 7)),
                                2000.0)
                    .ok());
    std::string wire;
    AppendPod(wire, static_cast<uint8_t>(net::FrameType::kRecord));
    AppendPod(wire, static_cast<uint32_t>(4));
    AppendPod(wire, static_cast<uint32_t>(0xDEADBEEF));  // wrong CRC
    wire += "abcd";
    ASSERT_TRUE(socket.SendAll(wire.data(), wire.size(), 2000.0).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  SocketTailerOptions options;
  options.drain_ms = 200.0;
  SocketTailer tailer("127.0.0.1", server.port(), options);
  std::vector<ingest::WalRecord> records;
  // Wire corruption is not data loss: the poll keeps the good record,
  // counts the corruption and drops the connection for a resync.
  Status polled = tailer.Poll(&records);
  EXPECT_TRUE(polled.ok()) << polled.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(tailer.counters().corrupt_frames.load(), 1);
  EXPECT_FALSE(tailer.connected());
  EXPECT_EQ(tailer.last_seq(), 1u);  // the watermark survives the resync
}

TEST(SocketTailerProtocolTest, SilentPeerIsDeclaredDead) {
  FakeServer server([](net::Socket& socket) {
    AcceptTail(socket);
    // Then say nothing at all — no records, no heartbeats.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  SocketTailerOptions options;
  options.drain_ms = 5.0;
  options.peer_timeout_ms = 40.0;
  SocketTailer tailer("127.0.0.1", server.port(), options);
  std::vector<ingest::WalRecord> records;
  ASSERT_TRUE(tailer.Poll(&records).ok());  // handshake succeeds
  for (int i = 0; i < 100 && tailer.counters().peer_deaths.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)tailer.Poll(&records);
  }
  EXPECT_GE(tailer.counters().peer_deaths.load(), 1);
  EXPECT_FALSE(tailer.connected());
}

// ---------------------------------------------------------------------------
// Reconnect-storm churn stress (the TSan lane runs this suite repeatedly).
// ---------------------------------------------------------------------------

TEST(SocketReplicaChurnStress, SurvivesPartitionsUnderChurn) {
  Env env("sock_stress", 40);
  auto r0 = env.MakeReplica("r0", SocketTailerOptions{.seed = 1});
  auto r1 = env.MakeReplica("r1", SocketTailerOptions{.seed = 2});
  ASSERT_TRUE(r0->Bootstrap(TempPath("sock_stress.r0.snap")).ok());
  ASSERT_TRUE(r1->Bootstrap(TempPath("sock_stress.r1.snap")).ok());

  std::atomic<bool> stop{false};
  // Mutator: the primary keeps committing.
  std::thread mutator([&env, &stop] {
    Rng rng(99);
    int inserted = 0;
    while (!stop.load(std::memory_order_acquire) && inserted < 300) {
      EXPECT_TRUE(env.index.Insert(RandomCode(16, rng), {}).ok());
      ++inserted;
    }
  });
  // Ship loops: one per replica, exactly like serve-bench's shipper.
  auto ship = [&stop](Replica* replica) {
    while (!stop.load(std::memory_order_acquire)) {
      if (replica->state() != ReplicaState::kDown) {
        (void)replica->PollApplyOnce();
      }
    }
  };
  std::thread ship0(ship, r0.get());
  std::thread ship1(ship, r1.get());
  // Readers: concurrent queries against both replicas.
  auto read = [&stop](Replica* replica) {
    Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      (void)replica->Query(RandomCode(16, rng), 5);
    }
  };
  std::thread read0(read, r0.get());
  std::thread read1(read, r1.get());
  // Chaos: repeated short partitions.
  std::thread chaos([&env, &stop] {
    for (int i = 0; i < 6 && !stop.load(std::memory_order_acquire); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      env.server->set_refuse_connections(true);
      env.server->Sever();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      env.server->set_refuse_connections(false);
    }
  });

  mutator.join();
  chaos.join();
  stop.store(true, std::memory_order_release);
  ship0.join();
  ship1.join();
  read0.join();
  read1.join();

  for (Replica* replica : {r0.get(), r1.get()}) {
    ASSERT_NE(replica->state(), ReplicaState::kDown);
    PumpUntilCaughtUp(*replica, *env.primary);
    ExpectIdentical(env.index, *replica, env.rng);
    // Every partition that severed an established stream must have healed
    // by reconnect, never by re-bootstrap.
    EXPECT_EQ(replica->transport().counters().snapshots_fetched.load(), 1);
  }
}

}  // namespace
}  // namespace traj2hash::replica
