#include "embedding/node2vec.h"

#include <cmath>

#include <gtest/gtest.h>

namespace traj2hash::embedding {
namespace {

double Dot(const float* a, const float* b, int d) {
  double acc = 0.0;
  for (int i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

TEST(Node2vecTest, SequenceEmbeddingShapeAndConstness) {
  Rng rng(1);
  Node2vecGridEmbedding emb(6, 6, 8, rng);
  const nn::Tensor seq = emb.SequenceEmbedding({{0, 0}, {5, 5}});
  EXPECT_EQ(seq->rows(), 2);
  EXPECT_EQ(seq->cols(), 8);
  EXPECT_FALSE(seq->requires_grad());
}

TEST(Node2vecTest, TrainProcessesPairsAndSeparatesNeighbors) {
  Rng rng(2);
  const int d = 12;
  Node2vecGridEmbedding emb(12, 12, d, rng);
  Node2vecOptions opt;
  opt.dim = d;
  opt.walk_length = 12;
  opt.num_walks = 4;
  opt.window = 3;
  const int64_t pairs = emb.Train(opt, rng);
  EXPECT_GT(pairs, 0);
  // Adjacent cells co-occur in walks, far cells rarely do.
  double near_sim = 0.0, far_sim = 0.0;
  int count = 0;
  for (int x = 2; x < 10; x += 2) {
    for (int y = 2; y < 10; y += 2) {
      const float* anchor = emb.EmbeddingOf({x, y});
      near_sim += Dot(anchor, emb.EmbeddingOf({x + 1, y}), d);
      far_sim += Dot(anchor, emb.EmbeddingOf({(x + 6) % 12, (y + 6) % 12}), d);
      ++count;
    }
  }
  EXPECT_GT(near_sim / count, far_sim / count);
}

TEST(Node2vecTest, WalkCostScalesWithNodeCount) {
  // The Fig. 7 point: node2vec work grows with the number of cells, while
  // the decomposed representation's parameter count grows with Nx + Ny.
  Rng rng(3);
  Node2vecOptions opt;
  opt.dim = 4;
  opt.walk_length = 5;
  opt.num_walks = 1;
  opt.window = 2;
  opt.num_negatives = 1;
  Node2vecGridEmbedding small(4, 4, 4, rng);
  Node2vecGridEmbedding large(12, 12, 4, rng);
  const int64_t small_pairs = small.Train(opt, rng);
  const int64_t large_pairs = large.Train(opt, rng);
  EXPECT_GT(large_pairs, 4 * small_pairs);
}

TEST(Node2vecDeathTest, DimMismatchInOptions) {
  Rng rng(4);
  Node2vecGridEmbedding emb(4, 4, 8, rng);
  Node2vecOptions opt;
  opt.dim = 16;
  EXPECT_DEATH(emb.Train(opt, rng), "CHECK");
}

}  // namespace
}  // namespace traj2hash::embedding
