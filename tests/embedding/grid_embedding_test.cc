#include "embedding/grid_embedding.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace traj2hash::embedding {
namespace {

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double CosineSim(const std::vector<float>& a, const std::vector<float>& b) {
  return Dot(a, b) / (std::sqrt(Dot(a, a)) * std::sqrt(Dot(b, b)) + 1e-12);
}

std::vector<float> CellVec(const DecomposedGridEmbedding& emb,
                           const traj::Cell& c) {
  return emb.SequenceEmbedding({c})->value();
}

TEST(DecomposedGridEmbeddingTest, SequenceShapeAndDecomposition) {
  Rng rng(1);
  DecomposedGridEmbedding emb(10, 12, 8, rng);
  const nn::Tensor seq = emb.SequenceEmbedding({{1, 2}, {3, 4}, {1, 2}});
  EXPECT_EQ(seq->rows(), 3);
  EXPECT_EQ(seq->cols(), 8);
  // Same cell -> same embedding row.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(seq->at(0, c), seq->at(2, c));
}

TEST(DecomposedGridEmbeddingTest, ParameterCountIsLinearNotQuadratic) {
  Rng rng(2);
  DecomposedGridEmbedding emb(100, 80, 16, rng);
  size_t total = 0;
  for (const nn::Tensor& p : emb.Parameters()) total += p->value().size();
  EXPECT_EQ(total, static_cast<size_t>((100 + 80) * 16));  // O(d(Nx+Ny))
}

TEST(DecomposedGridEmbeddingTest, SharedCoordinateInducesSimilarity) {
  // Even untrained, cells sharing an x coordinate share e_x (the paper's
  // "(3,5) and (3,6) are similar even without training").
  Rng rng(3);
  DecomposedGridEmbedding emb(20, 20, 16, rng);
  const auto a = CellVec(emb, {3, 5});
  const auto b = CellVec(emb, {3, 6});
  const auto c = CellVec(emb, {13, 17});
  EXPECT_GT(CosineSim(a, b), CosineSim(a, c));
}

TEST(DecomposedGridEmbeddingTest, PretrainSeparatesNeighborsFromFar) {
  Rng rng(4);
  DecomposedGridEmbedding emb(24, 24, 16, rng);
  GridPretrainOptions opt;
  opt.radius = 2;
  opt.samples_per_epoch = 4000;
  opt.epochs = 2;
  emb.Pretrain(opt, rng);
  EXPECT_TRUE(emb.frozen());
  // After NCE, neighbouring cells should score higher than distant cells.
  double near_sim = 0.0, far_sim = 0.0;
  int count = 0;
  for (int x = 4; x < 20; x += 4) {
    for (int y = 4; y < 20; y += 4) {
      const auto anchor = CellVec(emb, {x, y});
      near_sim += Dot(anchor, CellVec(emb, {x + 1, y}));
      far_sim += Dot(anchor, CellVec(emb, {(x + 12) % 24, (y + 12) % 24}));
      ++count;
    }
  }
  EXPECT_GT(near_sim / count, far_sim / count);
}

TEST(DecomposedGridEmbeddingTest, FrozenSequenceIsDetached) {
  Rng rng(5);
  DecomposedGridEmbedding emb(8, 8, 4, rng);
  EXPECT_TRUE(emb.SequenceEmbedding({{1, 1}})->requires_grad());
  emb.Freeze();
  EXPECT_FALSE(emb.SequenceEmbedding({{1, 1}})->requires_grad());
}

TEST(DecomposedGridEmbeddingDeathTest, OutOfRangeCell) {
  Rng rng(6);
  DecomposedGridEmbedding emb(8, 8, 4, rng);
  EXPECT_DEATH(emb.SequenceEmbedding({{8, 0}}), "CHECK");
}

}  // namespace
}  // namespace traj2hash::embedding
