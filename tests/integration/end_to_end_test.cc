// End-to-end pipeline test: synthesise a city, pre-train grids, train
// Traj2Hash, then run top-k retrieval in Euclidean and Hamming space and in
// the Hamming-Hybrid index, checking the trained model beats an untrained
// one and that the search stack agrees with brute force.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "distance/distance.h"
#include "eval/metrics.h"
#include "search/hamming_index.h"
#include "traj/synthetic.h"

namespace traj2hash {
namespace {

struct Pipeline {
  core::Traj2HashConfig cfg;
  std::vector<traj::Trajectory> all;
  std::vector<traj::Trajectory> seeds;
  std::vector<traj::Trajectory> queries;
  std::vector<traj::Trajectory> database;
  std::vector<std::vector<int>> truth;
  std::unique_ptr<core::Traj2Hash> model;
};

Pipeline BuildAndTrain(bool train) {
  Pipeline p;
  p.cfg.dim = 8;
  p.cfg.num_blocks = 1;
  p.cfg.num_heads = 2;
  p.cfg.epochs = train ? 6 : 1;
  p.cfg.samples_per_anchor = 6;
  p.cfg.batch_size = 8;

  Rng rng(77);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  p.all = GenerateTrips(city, 400, rng);
  p.seeds.assign(p.all.begin(), p.all.begin() + 28);
  p.queries.assign(p.all.begin() + 28, p.all.begin() + 36);
  p.database.assign(p.all.begin() + 36, p.all.end());

  const dist::DistanceFn fn = dist::GetDistance(dist::Measure::kFrechet);
  p.truth = eval::ExactTopK(p.queries, p.database, fn, 50);

  Rng model_rng(78);
  p.model = std::move(
      core::Traj2Hash::Create(p.cfg, p.all, model_rng).value());
  if (train) {
    embedding::GridPretrainOptions pre;
    pre.samples_per_epoch = 1500;
    pre.epochs = 1;
    p.model->PretrainGrids(pre, model_rng);
    core::TrainingData data;
    data.seeds = p.seeds;
    data.seed_distances = dist::PairwiseMatrix(p.seeds, fn);
    data.triplet_corpus = p.all;
    core::Trainer trainer(p.model.get(),
                          core::TrainerOptions{.triplets_per_step = 4});
    const auto report = trainer.Fit(data, model_rng);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  }
  return p;
}

eval::RetrievalMetrics EuclideanMetrics(const Pipeline& p) {
  return eval::EvaluateEuclidean(core::EmbedAll(*p.model, p.queries),
                                 core::EmbedAll(*p.model, p.database),
                                 p.truth);
}

TEST(EndToEndTest, TrainedModelBeatsUntrainedInHammingSpace) {
  // Euclidean retrieval from an untrained encoder is already strong at this
  // scale (random projections of coordinates preserve locality), so the
  // decisive end-to-end signal is in Hamming space, where untrained sign
  // codes are near-random and training must create the structure (the
  // paper's central claim).
  const Pipeline untrained = BuildAndTrain(false);
  const Pipeline trained = BuildAndTrain(true);
  const double before =
      eval::EvaluateHamming(core::HashAll(*untrained.model, untrained.queries),
                            core::HashAll(*untrained.model,
                                          untrained.database),
                            untrained.truth)
          .hr10;
  const double after =
      eval::EvaluateHamming(core::HashAll(*trained.model, trained.queries),
                            core::HashAll(*trained.model, trained.database),
                            trained.truth)
          .hr10;
  EXPECT_GT(after, before);
  // Euclidean retrieval quality must remain far above chance after training.
  EXPECT_GT(EuclideanMetrics(trained).hr10, 0.3);
}

TEST(EndToEndTest, HammingRetrievalBeatsRandomCodes) {
  const Pipeline trained = BuildAndTrain(true);
  const auto query_codes = core::HashAll(*trained.model, trained.queries);
  const auto db_codes = core::HashAll(*trained.model, trained.database);
  const double hr50 =
      eval::EvaluateHamming(query_codes, db_codes, trained.truth).hr50;
  // Random 50-of-364 retrieval would land around 50/364 ~= 0.14 on HR@50;
  // trained codes should do far better.
  EXPECT_GT(hr50, 0.25);
}

TEST(EndToEndTest, HybridSearchConsistentWithBruteForce) {
  const Pipeline trained = BuildAndTrain(true);
  const auto db_codes = core::HashAll(*trained.model, trained.database);
  search::HammingIndex index(db_codes);
  for (const traj::Trajectory& q : trained.queries) {
    const search::Code qc = trained.model->HashCode(q);
    const auto hybrid = index.HybridTopK(qc, 10);
    const auto brute = index.BruteForceTopK(qc, 10);
    ASSERT_EQ(hybrid.size(), brute.size());
    // Hybrid returns radius<=2 candidates when plentiful; its worst returned
    // distance can exceed brute force only if it fell back, in which case
    // they are identical. Either way the best result must agree.
    EXPECT_EQ(hybrid[0].distance, brute[0].distance);
  }
}

TEST(EndToEndTest, SaveReloadKeepsRetrievalQuality) {
  const Pipeline trained = BuildAndTrain(true);
  const std::string path =
      (std::filesystem::temp_directory_path() / "t2h_e2e_model.bin").string();
  ASSERT_TRUE(trained.model->Save(path).ok());

  Rng rng(999);
  auto reloaded = std::move(
      core::Traj2Hash::Create(trained.cfg, trained.all, rng).value());
  ASSERT_TRUE(reloaded->Load(path).ok());
  const auto a = trained.model->Embed(trained.queries[0]);
  const auto b = reloaded->Embed(trained.queries[0]);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace traj2hash
