// Library-level smoke test of the CLI's pipeline wiring (generate -> save ->
// load -> train -> query) without spawning a process: exercises the same
// call sequence tools/t2h_cli.cc performs, including the config-mismatch
// guard a user would hit with inconsistent flags.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include <fstream>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/parse.h"
#include "core/index.h"
#include "core/trainer.h"
#include "distance/distance.h"
#include "ingest/wal.h"
#include "replica/replica.h"
#include "replica/router.h"
#include "search/strategy.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "traj/io.h"
#include "traj/synthetic.h"

namespace traj2hash {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CliPipelineTest, GenerateSaveLoadTrainQuery) {
  // generate
  Rng rng(91);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 12;
  const auto generated = GenerateTrips(city, 150, rng);
  const std::string csv = TempPath("t2h_cli_smoke.csv");
  ASSERT_TRUE(traj::SaveCsv(generated, csv).ok());

  // load (what `train --data` does)
  auto loaded = traj::LoadCsv(csv);
  ASSERT_TRUE(loaded.ok());
  const std::vector<traj::Trajectory> corpus = std::move(loaded).value();
  ASSERT_EQ(corpus.size(), generated.size());

  // train
  const std::vector<traj::Trajectory> seeds(corpus.begin(),
                                            corpus.begin() + 20);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  cfg.epochs = 2;
  cfg.samples_per_anchor = 6;
  cfg.batch_size = 8;
  Rng train_rng(92);
  auto model =
      std::move(core::Traj2Hash::Create(cfg, corpus, train_rng).value());
  model->PretrainGrids({.samples_per_epoch = 300, .epochs = 1}, train_rng);
  core::TrainingData data;
  data.seeds = seeds;
  data.seed_distances = dist::PairwiseMatrix(
      seeds, dist::GetDistance(dist::Measure::kFrechet));
  data.triplet_corpus = corpus;
  core::Trainer trainer(model.get(),
                        core::TrainerOptions{.triplets_per_step = 2,
                                             .refine_epochs = 5});
  ASSERT_TRUE(trainer.Fit(data, train_rng).ok());
  const std::string model_path = TempPath("t2h_cli_smoke.bin");
  ASSERT_TRUE(model->Save(model_path).ok());

  // query through a freshly-constructed model (the CLI's `query` path).
  Rng query_rng(93);
  auto served =
      std::move(core::Traj2Hash::Create(cfg, corpus, query_rng).value());
  ASSERT_TRUE(served->Load(model_path).ok());
  core::TrajectoryIndex index(served.get());
  index.AddAll(corpus);
  const auto hits = index.QueryHamming(corpus[3], 5);
  ASSERT_EQ(hits.size(), 5u);
  // The query itself is in the index: its own code must be the top hit.
  EXPECT_EQ(hits[0].index, 3);
  EXPECT_EQ(hits[0].distance, 0.0);

  // config mismatch (wrong --dim at query time) fails loudly, not silently.
  core::Traj2HashConfig wrong = cfg;
  wrong.dim = 16;
  Rng wrong_rng(94);
  auto mismatched =
      std::move(core::Traj2Hash::Create(wrong, corpus, wrong_rng).value());
  EXPECT_FALSE(mismatched->Load(model_path).ok());

  std::remove(csv.c_str());
  std::remove(model_path.c_str());
}

TEST(CliStrategyFlagTest, ParsesKnownStrategiesAndRejectsUnknown) {
  // The CLI's --strategy flag funnels through search::ParseStrategy; the
  // strict-Args contract is that unknown values are loud errors.
  EXPECT_EQ(search::ParseStrategy("brute").value(),
            search::SearchStrategy::kBrute);
  EXPECT_EQ(search::ParseStrategy("radius2").value(),
            search::SearchStrategy::kRadius2);
  EXPECT_EQ(search::ParseStrategy("mih").value(),
            search::SearchStrategy::kMih);
  for (const char* bad : {"", "MIH", "bruteforce", "hybrid"}) {
    const auto result = search::ParseStrategy(bad);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_STREQ(search::StrategyName(search::SearchStrategy::kMih), "mih");
}

TEST(CliStrategyFlagTest, QueryStrategiesReturnIdenticalResults) {
  // What `t2h_cli query --strategy ...` dispatches to: every strategy must
  // return the same ids in the same order for the same database.
  Rng rng(95);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 10;
  const auto corpus = GenerateTrips(city, 80, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  auto model = std::move(core::Traj2Hash::Create(cfg, corpus, rng).value());

  core::TrajectoryIndex brute(model.get(), search::SearchStrategy::kBrute);
  core::TrajectoryIndex radius2(model.get(),
                                search::SearchStrategy::kRadius2);
  core::TrajectoryIndex mih(model.get(), search::SearchStrategy::kMih);
  const std::vector<traj::Trajectory> db(corpus.begin(), corpus.begin() + 60);
  brute.AddAll(db);
  radius2.AddAll(db);
  mih.AddAll(db);
  for (int q = 60; q < 70; ++q) {
    const auto expected = brute.QueryHamming(corpus[q], 7);
    for (const auto& got : {radius2.QueryHamming(corpus[q], 7),
                            mih.QueryHamming(corpus[q], 7)}) {
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].index, expected[i].index);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(CliRobustnessTest, BadDataPathAndMalformedCsvAreLoudErrors) {
  // `t2h_cli train --data <missing>` exits non-zero because LoadCsv's Status
  // propagates straight to Fail(); same funnel for malformed rows.
  const auto missing = traj::LoadCsv("/nonexistent/cli/data.csv");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  const std::string path = TempPath("t2h_cli_malformed.csv");
  {
    std::ofstream out(path);
    out << "1,0.0,0.0\n2,bogus,3.0\n";
  }
  const auto malformed = traj::LoadCsv(path);
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CliRobustnessTest, CorruptModelFileFailsWithDataLoss) {
  // `t2h_cli query --model <corrupt>` must refuse to serve from a damaged
  // checkpoint rather than answering queries with garbage weights.
  Rng rng(96);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 10;
  const auto corpus = GenerateTrips(city, 40, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  auto model = std::move(core::Traj2Hash::Create(cfg, corpus, rng).value());
  const std::string path = TempPath("t2h_cli_corrupt_model.bin");
  ASSERT_TRUE(model->Save(path).ok());

  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = bytes.value();
  corrupt[corrupt.size() - 9] ^= 0x20;
  ASSERT_TRUE(AtomicWriteFile(path, corrupt).ok());

  Rng fresh_rng(97);
  auto victim = std::move(core::Traj2Hash::Create(cfg, corpus, fresh_rng).value());
  const Status s = victim->Load(path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CliRobustnessTest, ServeBenchSnapshotAndDeadlineFlagsPath) {
  // The exact sequence `serve-bench --snapshot F --deadline-ms M
  // --queue-depth N` performs: try restore, else ingest + save; then query
  // with a per-request deadline.
  Rng rng(98);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 10;
  const auto corpus = GenerateTrips(city, 60, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  auto model = std::move(core::Traj2Hash::Create(cfg, corpus, rng).value());

  serve::QueryEngineOptions options;
  options.num_threads = 2;
  options.num_shards = 2;
  options.queue_depth = 4;
  options.overload_policy = serve::OverloadPolicy::kReject;
  const std::string snap = TempPath("t2h_cli_snapshot.bin");
  std::remove(snap.c_str());
  {
    serve::QueryEngine engine(model.get(), options);
    // Cold start: restore fails with kIoError (no snapshot yet) -> ingest.
    EXPECT_EQ(engine.LoadSnapshot(snap).code(), StatusCode::kIoError);
    engine.InsertAll({corpus.begin(), corpus.begin() + 50});
    ASSERT_TRUE(engine.SaveSnapshot(snap).ok());
  }
  serve::QueryEngine warm(model.get(), options);
  ASSERT_TRUE(warm.LoadSnapshot(snap).ok());
  EXPECT_EQ(warm.size(), 50);
  serve::QueryOptions per_query;
  per_query.deadline = Deadline::AfterMillis(10'000);
  const serve::QueryResult result = warm.Query(corpus[0], 5, per_query);
  EXPECT_TRUE(result.complete) << result.status.ToString();
  EXPECT_EQ(result.neighbors.size(), 5u);

  // A corrupt snapshot at startup is a hard Fail() in the CLI, never a
  // silent empty database.
  auto bytes = ReadFileToString(snap);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = bytes.value();
  corrupt[corrupt.size() / 3] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(snap, corrupt).ok());
  serve::QueryEngine victim(model.get(), options);
  EXPECT_EQ(victim.LoadSnapshot(snap).code(), StatusCode::kDataLoss);
  EXPECT_EQ(victim.size(), 0);
  std::remove(snap.c_str());
}

TEST(CliRobustnessTest, WalReplayReportsSeqRangeAndTornTail) {
  // The call sequence behind `t2h_cli wal-replay --wal F`: a clean log
  // replays with the full seq range and no truncation flag; a log with a
  // torn tail sets tail_truncated, which the CLI turns into a warning and
  // exit code 3.
  const std::string wal_path = TempPath("t2h_cli_walreplay.wal");
  std::remove(wal_path.c_str());
  {
    auto wal = std::move(ingest::Wal::Open(wal_path).value());
    for (int i = 0; i < 5; ++i) {
      ingest::WalRecord r;
      r.type = ingest::WalRecordType::kInsert;
      r.id = i;
      r.code.num_bits = 16;
      r.code.words = {static_cast<uint64_t>(i)};
      ASSERT_TRUE(wal->Append(r).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  const auto clean = ingest::Wal::Replay(wal_path);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().records.front().seq, 1u);
  EXPECT_EQ(clean.value().last_seq, 5u);
  EXPECT_FALSE(clean.value().tail_truncated);

  // Append a torn frame as a crash mid-append would leave.
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << "\xff\xff\xff\x7ftorn";
  }
  const auto torn = ingest::Wal::Replay(wal_path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn.value().tail_truncated);  // -> CLI warning + exit 3
  EXPECT_EQ(torn.value().last_seq, 5u);
  EXPECT_EQ(torn.value().valid_bytes, clean.value().valid_bytes);
  std::remove(wal_path.c_str());
}

TEST(CliRobustnessTest, WalReplayFromSeqIsStrictlyParsed) {
  // `wal-replay --from-seq N` funnels through ParseUint64: an operator typo
  // must be a loud error, never a silently-wrong replay suffix.
  EXPECT_EQ(ParseUint64("0").value(), 0u);
  EXPECT_EQ(ParseUint64("100").value(), 100u);
  EXPECT_EQ(ParseUint64("18446744073709551615").value(),
            18446744073709551615ull);
  for (const char* bad : {"", "1O0", "100x", "-1", "+5", " 100", "100 ",
                          "0x10", "1e3", "18446744073709551616"}) {
    const auto result = ParseUint64(bad);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }

  // The suffix semantics the flag drives: records below N are skipped,
  // everything at-or-above replays.
  const std::string wal_path = TempPath("t2h_cli_fromseq.wal");
  std::remove(wal_path.c_str());
  {
    auto wal = std::move(ingest::Wal::Open(wal_path).value());
    for (int i = 0; i < 6; ++i) {
      ingest::WalRecord r;
      r.type = ingest::WalRecordType::kInsert;
      r.id = i;
      r.code.num_bits = 16;
      r.code.words = {static_cast<uint64_t>(i)};
      ASSERT_TRUE(wal->Append(r).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  const auto replayed = ingest::Wal::Replay(wal_path);
  ASSERT_TRUE(replayed.ok());
  const uint64_t from_seq = 4;
  size_t skipped = 0, shown = 0;
  uint64_t first_shown = 0;
  for (const auto& r : replayed.value().records) {
    if (r.seq < from_seq) {
      ++skipped;
      continue;
    }
    if (shown == 0) first_shown = r.seq;
    ++shown;
  }
  EXPECT_EQ(skipped, 3u);
  EXPECT_EQ(shown, 3u);
  EXPECT_EQ(first_shown, 4u);
  EXPECT_EQ(replayed.value().last_seq, 6u);
  std::remove(wal_path.c_str());
}

TEST(CliRobustnessTest, ServeBenchReplicaFlagsPath) {
  // The wiring behind `serve-bench --wal F --replicas 2`: recover a durable
  // engine, wrap its index in a replica::Primary, bootstrap replicas, route
  // reads, and verify the routed answers equal the primary's.
  Rng rng(99);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 10;
  const auto corpus = GenerateTrips(city, 50, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  auto model = std::move(core::Traj2Hash::Create(cfg, corpus, rng).value());

  serve::QueryEngineOptions options;
  options.num_threads = 1;
  options.num_shards = 2;
  serve::QueryEngine engine(model.get(), options);
  const std::string wal_path = TempPath("t2h_cli_replicas.wal");
  std::remove(wal_path.c_str());
  ASSERT_TRUE(engine.Recover("", wal_path).ok());
  ASSERT_TRUE(engine.InsertAll({corpus.begin(), corpus.begin() + 40}).ok());

  replica::Primary primary(engine.mutable_index(), wal_path);
  replica::Replica r0(&primary, replica::ReplicaOptions{}, "cli-r0");
  replica::Replica r1(&primary, replica::ReplicaOptions{}, "cli-r1");
  const std::string boot = TempPath("t2h_cli_replicas.boot.snap");
  ASSERT_TRUE(r0.Bootstrap(boot).ok());
  ASSERT_TRUE(r1.Bootstrap(boot).ok());
  replica::ReadRouter router({&r0, &r1}, {});
  for (int q = 0; q < 8; ++q) {
    const search::Code code = model->HashCode(corpus[q]);
    const replica::RoutedRead read = router.Query(code, 5);
    ASSERT_TRUE(read.status.ok()) << read.status.ToString();
    const auto want = engine.index().QueryTopK(code, 5);
    ASSERT_EQ(read.neighbors.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(read.neighbors[i].index, want[i].index);
      EXPECT_EQ(read.neighbors[i].distance, want[i].distance);
    }
  }
  EXPECT_EQ(router.routed_to(0) + router.routed_to(1), 8);
  EXPECT_EQ(r0.lag_records(), 0);
  EXPECT_EQ(r1.lag_records(), 0);
  std::remove(wal_path.c_str());
  std::remove(boot.c_str());
}

/// The stats-json schema contract for the `frontend` block: serve-bench
/// emits serve::FrontendJson(engine.frontend_stats()) verbatim, so this
/// checks the exact string the CLI writes — every key present, numeric
/// values extractable, and the counter invariant hits + misses == lookups
/// == cacheable queries issued.
TEST(CliStatsJsonTest, FrontendBlockParsesAndCountersAreConsistent) {
  Rng rng(97);
  traj::CityConfig city = traj::CityConfig::PortoLike();
  city.max_points = 10;
  const auto corpus = GenerateTrips(city, 80, rng);
  core::Traj2HashConfig cfg;
  cfg.dim = 8;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  auto model = std::move(core::Traj2Hash::Create(cfg, corpus, rng).value());

  serve::QueryEngine engine(model.get(), {.num_threads = 2,
                                          .num_shards = 2,
                                          .enable_coalescing = true,
                                          .max_batch = 4,
                                          .max_wait_us = 100,
                                          .cache_entries = 16});
  ASSERT_TRUE(engine.InsertAll({corpus.begin(), corpus.begin() + 60}).ok());
  // Two passes over a small query set: pass 1 misses, pass 2 hits.
  constexpr int kQueries = 10;
  for (int pass = 0; pass < 2; ++pass) {
    for (int q = 0; q < kQueries; ++q) {
      ASSERT_TRUE(engine.Query(corpus[60 + q], 5).status.ok());
    }
  }

  const std::string json = serve::FrontendJson(engine.frontend_stats());
  for (const char* key :
       {"\"coalescing\"", "\"caching\"", "\"batches\"", "\"coalesced_queries\"",
        "\"batch_occupancy_mean\"", "\"batch_occupancy_p50\"",
        "\"batch_occupancy_p95\"", "\"batch_occupancy_max\"",
        "\"flushes_full\"", "\"flushes_deadline\"", "\"flushes_idle\"",
        "\"cache_lookups\"", "\"cache_hits\"", "\"cache_misses\"",
        "\"cache_stale\"", "\"flight_waits\"", "\"flight_served\"",
        "\"cache_insertions\"", "\"cache_evictions\"", "\"cache_bytes\"",
        "\"epoch\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }

  const auto field = [&json](const std::string& key) -> long long {
    const size_t at = json.find("\"" + key + "\": ");
    EXPECT_NE(at, std::string::npos) << key;
    return std::atoll(json.c_str() + at + key.size() + 4);
  };
  const long long lookups = field("cache_lookups");
  const long long hits = field("cache_hits");
  const long long misses = field("cache_misses");
  EXPECT_EQ(lookups, 2 * kQueries) << "one lookup per cacheable query";
  EXPECT_EQ(hits + misses, lookups);
  EXPECT_LE(field("cache_stale"), misses);
  EXPECT_EQ(field("coalesced_queries"), misses)
      << "exactly the misses reach the coalescer";
  // Live entries exist, so the byte gauge is at least the fixed per-entry
  // overhead times the live entry count.
  EXPECT_GE(field("cache_bytes"),
            (field("cache_insertions") - field("cache_evictions")) *
                static_cast<long long>(serve::ResultCache::kEntryOverheadBytes));
  EXPECT_GT(field("cache_bytes"), 0);
  EXPECT_NE(json.find("\"coalescing\": true"), std::string::npos);
  EXPECT_NE(json.find("\"caching\": true"), std::string::npos);

  // Balanced braces and no trailing newline: the CLI splices this string
  // into a larger JSON object.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 1);
}

TEST(CliOverloadFlagTest, ParsesPoliciesAndRejectsUnknown) {
  // `--overload reject|block` funnels through serve::ParseOverloadPolicy.
  EXPECT_EQ(serve::ParseOverloadPolicy("reject").value(),
            serve::OverloadPolicy::kReject);
  EXPECT_EQ(serve::ParseOverloadPolicy("block").value(),
            serve::OverloadPolicy::kBlock);
  for (const char* bad : {"", "REJECT", "drop", "shed"}) {
    const auto result = serve::ParseOverloadPolicy(bad);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_STREQ(serve::OverloadPolicyName(serve::OverloadPolicy::kBlock),
               "block");
}

}  // namespace
}  // namespace traj2hash
