// Protocol tests for the experiment harness: split sizes, disjointness, and
// scale presets. These guard the benches' validity (e.g. no query leaking
// into the seed set).

#include <set>

#include <gtest/gtest.h>

#include "bench/harness.h"

namespace traj2hash::bench {
namespace {

TEST(ScaleTest, PresetsAreOrdered) {
  setenv("T2H_BENCH_SCALE", "tiny", 1);
  const Scale tiny = GetScale();
  setenv("T2H_BENCH_SCALE", "small", 1);
  const Scale small = GetScale();
  setenv("T2H_BENCH_SCALE", "large", 1);
  const Scale large = GetScale();
  unsetenv("T2H_BENCH_SCALE");

  EXPECT_EQ(tiny.name, "tiny");
  EXPECT_EQ(small.name, "small");
  EXPECT_EQ(large.name, "large");
  EXPECT_LT(tiny.num_db, small.num_db);
  EXPECT_LT(small.num_db, large.num_db);
  EXPECT_LT(tiny.num_seeds, small.num_seeds);
  EXPECT_LT(small.num_seeds, large.num_seeds);
  EXPECT_LE(tiny.dim, small.dim);
  EXPECT_LE(small.dim, large.dim);
}

TEST(ScaleTest, UnknownFallsBackToSmall) {
  setenv("T2H_BENCH_SCALE", "warp-speed", 1);
  EXPECT_EQ(GetScale().name, "small");
  unsetenv("T2H_BENCH_SCALE");
}

TEST(DatasetTest, SplitSizesMatchScale) {
  setenv("T2H_BENCH_SCALE", "tiny", 1);
  const Scale scale = GetScale();
  unsetenv("T2H_BENCH_SCALE");
  const Dataset d =
      MakeDataset(traj::CityConfig::PortoLike(), scale, 5);
  EXPECT_EQ(static_cast<int>(d.seeds.size()), scale.num_seeds);
  EXPECT_EQ(static_cast<int>(d.val_queries.size()), scale.num_val_queries);
  EXPECT_EQ(static_cast<int>(d.val_db.size()), scale.num_val_db);
  EXPECT_EQ(static_cast<int>(d.queries.size()), scale.num_queries);
  EXPECT_EQ(static_cast<int>(d.database.size()), scale.num_db);
  EXPECT_GE(static_cast<int>(d.all.size()), scale.triplet_corpus);
}

TEST(DatasetTest, SplitsAreDisjoint) {
  setenv("T2H_BENCH_SCALE", "tiny", 1);
  const Scale scale = GetScale();
  unsetenv("T2H_BENCH_SCALE");
  const Dataset d =
      MakeDataset(traj::CityConfig::ChengduLike(), scale, 6);
  std::set<int64_t> seen;
  auto check_disjoint = [&seen](const std::vector<traj::Trajectory>& split) {
    for (const traj::Trajectory& t : split) {
      EXPECT_TRUE(seen.insert(t.id).second) << "id " << t.id << " reused";
    }
  };
  check_disjoint(d.seeds);
  check_disjoint(d.val_queries);
  check_disjoint(d.val_db);
  check_disjoint(d.queries);
  check_disjoint(d.database);
}

TEST(DatasetTest, DeterministicUnderSeed) {
  setenv("T2H_BENCH_SCALE", "tiny", 1);
  const Scale scale = GetScale();
  unsetenv("T2H_BENCH_SCALE");
  const Dataset a = MakeDataset(traj::CityConfig::PortoLike(), scale, 7);
  const Dataset b = MakeDataset(traj::CityConfig::PortoLike(), scale, 7);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].points, b.queries[i].points);
  }
}

TEST(MeasureDataTest, GroundTruthShapes) {
  setenv("T2H_BENCH_SCALE", "tiny", 1);
  const Scale scale = GetScale();
  unsetenv("T2H_BENCH_SCALE");
  const Dataset d = MakeDataset(traj::CityConfig::PortoLike(), scale, 8);
  const MeasureData md = ComputeMeasureData(d, dist::Measure::kHausdorff);
  EXPECT_EQ(md.seed_distances.size(),
            d.seeds.size() * d.seeds.size());
  EXPECT_EQ(md.val_truth.size(), d.val_queries.size());
  EXPECT_EQ(md.test_truth.size(), d.queries.size());
  for (const auto& ids : md.test_truth) {
    EXPECT_EQ(ids.size(), 50u);
    for (const int id : ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, static_cast<int>(d.database.size()));
    }
  }
}

}  // namespace
}  // namespace traj2hash::bench
