#!/usr/bin/env bash
# Full verification sweep: plain, AddressSanitizer and ThreadSanitizer
# build+test lanes, plus a quick tier-1 lane for inner-loop development.
# Usage:
#
#   tools/check.sh           # all three full lanes + the simd sweep
#   tools/check.sh plain     # just one lane: fast | plain | asan | tsan |
#                            # simd | chaos | quant
#   tools/check.sh fast      # plain build + only the tier1-labelled tests
#                            # (the fast, dependency-light unit tests —
#                            # see tests/CMakeLists.txt)
#   tools/check.sh simd      # plain build + the kernels-labelled suites
#                            # rerun once per available kernel ISA, forced
#                            # via T2H_KERNEL_ISA (DESIGN.md 14)
#   tools/check.sh chaos     # asan build + the replica_net-labelled suites
#                            # (socket framing / transport / reconnect
#                            # chaos, DESIGN.md 16) plus the serve-bench
#                            # netsplit drill on real data
#   tools/check.sh quant     # plain build + the quant-labelled suites
#                            # (int8 store / re-ranker / quantized kernels,
#                            # DESIGN.md 17) plus the full-scale bench_quant
#                            # gate run (memory ratio, recall, avx2 speedup)
#
# Each lane configures into its own build directory (build, build-asan,
# build-tsan; fast shares build), so incremental re-runs are cheap. A lane
# failing stops the sweep with that lane's ctest output on screen.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lane() {
  local lane="$1" dir="$2" sanitize="$3"
  shift 3
  echo "==== lane: ${lane} (${dir}) ===="
  cmake -B "${dir}" -S . -DT2H_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "$(nproc)"
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)" "$@"
}

# The replica failover stress (ReadRouterTest.RollingRestartUnderChurnStress:
# concurrent readers + mutator + shipper across a rolling restart) is the
# most race-prone test in the tree; the tsan lane gives it a dedicated
# repeated run on top of the full sweep.
replica_stress() {
  echo "==== lane: tsan-replica-stress (build-tsan) ===="
  ctest --test-dir build-tsan --output-on-failure \
    -R 'RollingRestartUnderChurnStress' --repeat until-fail:3
}

# The front-end stress (FrontendStressTest.CoalescerCacheChurnStress: readers
# through the coalescer + single-flight cache while a mutator churns the
# index, with oracle-at-observed-epoch exactness checks) gets the same
# repeated-tsan treatment — it is where a cache/epoch race would surface.
frontend_stress() {
  echo "==== lane: tsan-frontend-stress (build-tsan) ===="
  ctest --test-dir build-tsan --output-on-failure \
    -R 'CoalescerCacheChurnStress' --repeat until-fail:3
}

# The quantized-store churn stress
# (QuantChurnTest.ConcurrentRerankAndMutationsAreRaceFree: re-rank readers
# against writers that widen the int8 params in place and trigger
# compaction rescales) is where a torn param/row pair would surface —
# DESIGN.md 17.
quant_stress() {
  echo "==== lane: tsan-quant-stress (build-tsan) ===="
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ConcurrentRerankAndMutationsAreRaceFree' --repeat until-fail:3
}

# The quantized embedding store end to end (DESIGN.md 17): the
# quant-labelled suites (params / lattice round trips, re-ranker
# bit-identity, per-ISA quantized kernels, snapshot v3, churn property
# tests), then the full-scale bench_quant run whose gates — resident-memory
# ratio ≥ 3.5x, recall@k == 1.0 against the exact float scan, avx2 ≥ 2x
# scalar on the cache-resident sweep — exit non-zero when violated.
quant_lane() {
  run_lane quant build "" -L quant
  echo "==== lane: quant-bench-gates (build) ===="
  ./build/bench/bench_quant > /dev/null
}

# The socket-transport reconnect storm
# (SocketReplicaChurnStress.SurvivesPartitionsUnderChurn: two socket-tailing
# replicas under a mutator + readers while a chaos thread severs and heals
# the link) is the network analogue — raced reconnect/heartbeat state would
# surface here first.
socket_stress() {
  echo "==== lane: tsan-socket-stress (build-tsan) ===="
  ctest --test-dir build-tsan --output-on-failure \
    -R 'SurvivesPartitionsUnderChurn' --repeat until-fail:3
}

# Network fault-injection sweep under ASan: the replica_net-labelled suites
# (socket framing, ship transport, injected net faults, protocol resync —
# DESIGN.md 16), then the serve-bench netsplit drill end-to-end on real
# data: partition the socket transport mid-churn, assert zero dropped
# queries, backoff reconnect without re-bootstrap, and bit-identical
# convergence. The drill exits non-zero on any violated invariant.
chaos_lane() {
  T2H_KERNEL_ISA=scalar run_lane chaos build-asan address -L replica_net
  echo "==== lane: chaos-netsplit-drill (build-asan) ===="
  local dir
  dir="$(mktemp -d)"
  trap 'rm -rf "${dir}"' RETURN
  ./build-asan/tools/t2h_cli generate --out "${dir}/trips.csv" \
    --count 300 --max-points 12 --seed 7
  T2H_KERNEL_ISA=scalar ./build-asan/tools/t2h_cli serve-bench \
    --data "${dir}/trips.csv" --queries 64 --rounds 4 --clients 2 \
    --wal "${dir}/bench.wal" --replicas 2 --transport socket \
    --drill netsplit --churn 64 --max-lag-records 512
}

# Reruns the kernels-labelled suites once per ISA this host can actually
# run, each pass forced via T2H_KERNEL_ISA (an unavailable forced ISA is a
# hard startup failure, never a silent fallback — so availability is probed
# first with `t2h_cli version`). Guarantees the scalar and sse2 paths keep
# passing on machines where avx2 would otherwise shadow them.
simd_lane() {
  echo "==== lane: simd (build) ===="
  cmake -B build -S . -DT2H_SANITIZE="" >/dev/null
  cmake --build build -j "$(nproc)"
  local isa
  for isa in scalar sse2 avx2; do
    if T2H_KERNEL_ISA="${isa}" ./build/tools/t2h_cli version >/dev/null 2>&1; then
      echo "---- simd: forcing T2H_KERNEL_ISA=${isa} ----"
      T2H_KERNEL_ISA="${isa}" ctest --test-dir build --output-on-failure \
        -j "$(nproc)" -L kernels
    else
      echo "---- simd: ${isa} unavailable on this host, SKIPPED ----"
    fi
  done
}

# Note: the fast lane filters by label, not by name, so new tier1-labelled
# suites (e.g. the replica/ and router tests) are picked up automatically.
# It also runs the frontend-labelled serve front-end suites (DESIGN.md 15)
# and the replica_net-labelled socket transport suites (DESIGN.md 16).
lanes="${1:-all}"
case "${lanes}" in
  fast)  run_lane fast build "" -L 'tier1|frontend|replica_net' ;;
  plain) run_lane plain build "" ;;
  # The sanitizer lane pins the scalar backend: asan instruments the
  # portable loops (the contract every SIMD path is checked against), and
  # the vector paths' aligned whole-block loads would only re-test the
  # same bytes at higher noise.
  asan)  T2H_KERNEL_ISA=scalar run_lane asan build-asan address ;;
  tsan)
    run_lane tsan build-tsan thread
    replica_stress
    frontend_stress
    socket_stress
    quant_stress
    ;;
  simd)  simd_lane ;;
  chaos) chaos_lane ;;
  quant) quant_lane ;;
  all)
    run_lane plain build ""
    simd_lane
    T2H_KERNEL_ISA=scalar run_lane asan build-asan address
    chaos_lane
    quant_lane
    run_lane tsan build-tsan thread
    replica_stress
    frontend_stress
    socket_stress
    quant_stress
    ;;
  *)
    echo "usage: tools/check.sh [fast|plain|asan|tsan|simd|chaos|quant|all]" >&2
    exit 2
    ;;
esac
echo "==== all requested lanes passed ===="
