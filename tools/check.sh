#!/usr/bin/env bash
# Full verification sweep: plain, AddressSanitizer and ThreadSanitizer
# build+test lanes, plus a quick tier-1 lane for inner-loop development.
# Usage:
#
#   tools/check.sh           # all three full lanes
#   tools/check.sh plain     # just one lane: fast | plain | asan | tsan
#   tools/check.sh fast      # plain build + only the tier1-labelled tests
#                            # (the fast, dependency-light unit tests —
#                            # see tests/CMakeLists.txt)
#
# Each lane configures into its own build directory (build, build-asan,
# build-tsan; fast shares build), so incremental re-runs are cheap. A lane
# failing stops the sweep with that lane's ctest output on screen.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lane() {
  local lane="$1" dir="$2" sanitize="$3"
  shift 3
  echo "==== lane: ${lane} (${dir}) ===="
  cmake -B "${dir}" -S . -DT2H_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "$(nproc)"
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)" "$@"
}

# The replica failover stress (ReadRouterTest.RollingRestartUnderChurnStress:
# concurrent readers + mutator + shipper across a rolling restart) is the
# most race-prone test in the tree; the tsan lane gives it a dedicated
# repeated run on top of the full sweep.
replica_stress() {
  echo "==== lane: tsan-replica-stress (build-tsan) ===="
  ctest --test-dir build-tsan --output-on-failure \
    -R 'RollingRestartUnderChurnStress' --repeat until-fail:3
}

# Note: the fast lane filters by label, not by name, so new tier1-labelled
# suites (e.g. the replica/ and router tests) are picked up automatically.
lanes="${1:-all}"
case "${lanes}" in
  fast)  run_lane fast build "" -L tier1 ;;
  plain) run_lane plain build "" ;;
  asan)  run_lane asan build-asan address ;;
  tsan)
    run_lane tsan build-tsan thread
    replica_stress
    ;;
  all)
    run_lane plain build ""
    run_lane asan build-asan address
    run_lane tsan build-tsan thread
    replica_stress
    ;;
  *)
    echo "usage: tools/check.sh [fast|plain|asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "==== all requested lanes passed ===="
