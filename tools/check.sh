#!/usr/bin/env bash
# Full verification sweep: plain, AddressSanitizer and ThreadSanitizer
# build+test lanes, plus a quick tier-1 lane for inner-loop development.
# Usage:
#
#   tools/check.sh           # all three full lanes
#   tools/check.sh plain     # just one lane: fast | plain | asan | tsan
#   tools/check.sh fast      # plain build + only the tier1-labelled tests
#                            # (the fast, dependency-light unit tests —
#                            # see tests/CMakeLists.txt)
#
# Each lane configures into its own build directory (build, build-asan,
# build-tsan; fast shares build), so incremental re-runs are cheap. A lane
# failing stops the sweep with that lane's ctest output on screen.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lane() {
  local lane="$1" dir="$2" sanitize="$3"
  shift 3
  echo "==== lane: ${lane} (${dir}) ===="
  cmake -B "${dir}" -S . -DT2H_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "$(nproc)"
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)" "$@"
}

lanes="${1:-all}"
case "${lanes}" in
  fast)  run_lane fast build "" -L tier1 ;;
  plain) run_lane plain build "" ;;
  asan)  run_lane asan build-asan address ;;
  tsan)  run_lane tsan build-tsan thread ;;
  all)
    run_lane plain build ""
    run_lane asan build-asan address
    run_lane tsan build-tsan thread
    ;;
  *)
    echo "usage: tools/check.sh [fast|plain|asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "==== all requested lanes passed ===="
