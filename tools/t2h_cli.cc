// traj2hash command-line tool: generate synthetic data, train models, run
// top-k similar trajectory queries, and bench the concurrent serving engine
// from CSV files.
//
//   t2h_cli generate    --city porto --count 2000 --out trips.csv
//   t2h_cli train       --data trips.csv --measure frechet --out model.bin
//   t2h_cli query       --data trips.csv --model model.bin --query-id 5 --k 10
//   t2h_cli distance    --data trips.csv --a 3 --b 7
//   t2h_cli serve-bench --data trips.csv --threads 4 --shards 4
//   t2h_cli serve-bench --data trips.csv --churn 500 --stats-json stats.json
//   t2h_cli wal-replay  --wal serve.wal
//
// `train` and `query` must be given the same --data / --dim / --measure
// flags: the model file stores parameters only, while normaliser and grid
// statistics are re-fitted deterministically from the data file.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu_features.h"
#include "common/file_util.h"
#include "common/parse.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "common/zipf.h"
#include "ingest/wal.h"
#include "replica/replica.h"
#include "replica/router.h"
#include "core/trainer.h"
#include "distance/distance.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"
#include "search/strategy.h"
#include "serve/engine.h"
#include "traj/io.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

namespace {

/// Strict --flag value parser; flags may appear in any order. Malformed
/// input (a positional argument, a flag without a value) is collected as an
/// error instead of being silently skipped or misread as the previous
/// flag's value; commands additionally reject flags they do not know.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        errors_.push_back("unexpected positional argument '" + arg + "'");
        continue;
      }
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        errors_.push_back("flag " + arg + " is missing a value");
        continue;
      }
      values_[arg.substr(2)] = argv[i + 1];
      ++i;
    }
  }

  /// Parse errors plus any flag outside `known`, or empty when clean.
  std::vector<std::string> Validate(const std::set<std::string>& known) const {
    std::vector<std::string> errors = errors_;
    for (const auto& [key, value] : values_) {
      if (known.count(key) == 0) {
        errors.push_back("unknown flag --" + key);
      }
    }
    return errors;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::atoi(it->second.c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> errors_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// One-line description of the resolved kernel dispatch, for startup logs
/// and `version`: which ISA the kernels run on, what the CPU would support,
/// why this one was chosen, and which backends this binary carries.
std::string KernelIsaLine() {
  const t2h::KernelIsaSelection sel = t2h::CurrentKernelIsa();
  std::string line = "kernel isa: selected=";
  line += t2h::KernelIsaName(sel.selected);
  line += " detected=";
  line += t2h::KernelIsaName(sel.detected);
  line += " source=";
  line += sel.source;
  line += " available=";
  bool first = true;
  for (int i = 0; i < t2h::kNumKernelIsas; ++i) {
    const auto isa = static_cast<t2h::KernelIsa>(i);
    if (!t2h::KernelIsaAvailable(isa)) continue;
    if (!first) line += ",";
    line += t2h::KernelIsaName(isa);
    first = false;
  }
  return line;
}

/// Applies --kernel-isa before any kernel dispatch. An unknown name or an
/// ISA this binary/CPU cannot run is a hard error — the dispatcher never
/// silently falls back to a different path than the one asked for.
t2h::Status ApplyKernelIsaFlag(const Args& args) {
  const std::string name = args.Get("kernel-isa", "");
  if (name.empty()) return t2h::Status::Ok();
  const t2h::Result<t2h::KernelIsa> isa = t2h::ParseKernelIsa(name);
  if (!isa.ok()) return isa.status();
  return t2h::SetKernelIsa(isa.value(), "cli:--kernel-isa");
}

int RunVersion(const Args&) {
  std::printf("t2h_cli (traj2hash)\n%s\n", KernelIsaLine().c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: t2h_cli <command> [--flag value]...\n"
               "  generate --out F [--city porto|chengdu] [--count N]"
               " [--max-points N] [--seed S]\n"
               "  train    --data F --out MODEL [--measure frechet|hausdorff"
               "|dtw]\n"
               "           [--seeds N] [--epochs N] [--dim D] [--seed S]"
               " [--threads T]\n"
               "  query    --data F --model MODEL --query-id ID [--k K]\n"
               "           [--space euclid|hamming|hybrid] [--dim D]"
               " [--seed S]\n"
               "           [--strategy brute|radius2|mih]"
               " [--mih-substrings M]\n"
               "  distance --data F --a ID --b ID\n"
               "  serve-bench --data F [--model MODEL] [--threads T]"
               " [--shards S]\n"
               "           [--k K] [--queries N] [--rounds R] [--dim D]"
               " [--seed S]\n"
               "           [--strategy brute|radius2|mih]"
               " [--mih-substrings M]\n"
               "           [--deadline-ms MS] [--queue-depth N]"
               " [--overload reject|block]\n"
               "           [--snapshot F]  (load encoded db from F if it"
               " exists, else build+save)\n"
               "           [--wal F]       (durable mode: recover from"
               " snapshot+WAL, fsync every\n"
               "                            mutation, checkpoint at exit"
               " when --snapshot is set)\n"
               "           [--churn OPS]   (run OPS concurrent mutations"
               " during the query rounds,\n"
               "                            then verify queries stayed"
               " exact)\n"
               "           [--query-dist uniform|zipf:<s>] (query key"
               " distribution; zipf skews\n"
               "                            the load onto hot keys with"
               " exponent s)\n"
               "           [--replicas N]  (requires --wal: ship the log to"
               " N replicas and route\n"
               "                            the query rounds across them;"
               " DESIGN.md 13)\n"
               "           [--drill none|rolling|kill|netsplit] (with"
               " --replicas: rolling-restart,\n"
               "                            crash+rebootstrap one replica, or"
               " sever the socket\n"
               "                            transport mid-burst)\n"
               "           [--transport inproc|socket] (with --replicas: ship"
               " the WAL in-process\n"
               "                            or over framed loopback TCP;"
               " DESIGN.md 16)\n"
               "           [--max-lag-records N] [--max-lag-ms M] (staleness"
               " bound: demote a\n"
               "                            replica lagging past either limit"
               " from routing)\n"
               "           [--clients C]   (drive rounds from C concurrent"
               " client threads calling\n"
               "                            Query() instead of QueryBatch)\n"
               "           [--batch-wait-us U] (requires --clients: coalesce"
               " concurrent queries\n"
               "                            into one encode batch, waiting at"
               " most U us)\n"
               "           [--max-batch B] (coalescer flush size, default"
               " 8)\n"
               "           [--cache-entries N] (epoch-keyed result cache"
               " capacity; 0 = off)\n"
               "           [--quantize 0|1] (int8 embedding store + a round"
               " of two-stage\n"
               "                            Euclidean re-rank queries;"
               " DESIGN.md 17)\n"
               "           [--rerank-candidates N] (Hamming candidates"
               " re-ranked per shard;\n"
               "                            0 = max(8k, 64))\n"
               "           [--stats-json F] (dump the per-stage latency"
               " snapshot as JSON)\n"
               "  wal-replay --wal F  (walk a write-ahead log, print its"
               " records and tail state;\n"
               "                       exit 3 when a torn tail was found)\n"
               "           [--from-seq N] (print only the suffix with seq"
               " >= N)\n"
               "  version  (print build info and the resolved kernel ISA)\n"
               "train/query/serve-bench/version also take\n"
               "  [--kernel-isa scalar|sse2|avx2] (force the SIMD kernel"
               " backend; errors if\n"
               "                            unavailable — same as the"
               " T2H_KERNEL_ISA env var)\n");
  return 2;
}

/// Reports accumulated parse errors / unknown flags for one command; returns
/// true when the command should abort.
bool RejectBadFlags(const Args& args, const std::set<std::string>& known) {
  const std::vector<std::string> errors = args.Validate(known);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "error: %s\n", e.c_str());
  }
  return !errors.empty();
}

t2h::Result<std::vector<t2h::traj::Trajectory>> LoadData(const Args& args) {
  const std::string path = args.Get("data", "");
  if (path.empty()) {
    return t2h::Status::InvalidArgument("--data is required");
  }
  return t2h::traj::LoadCsv(path);
}

t2h::core::Traj2HashConfig ConfigFromArgs(const Args& args) {
  t2h::core::Traj2HashConfig config;
  config.dim = args.GetInt("dim", 16);
  config.num_heads = config.dim % 4 == 0 ? 4 : 2;
  config.epochs = args.GetInt("epochs", 10);
  config.samples_per_anchor = 8;
  config.batch_size = 16;
  return config;
}

int RunGenerate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) return Fail("--out is required");
  t2h::traj::CityConfig city = args.Get("city", "porto") == "chengdu"
                                   ? t2h::traj::CityConfig::ChengduLike()
                                   : t2h::traj::CityConfig::PortoLike();
  city.max_points = args.GetInt("max-points", 24);
  t2h::Rng rng(args.GetInt("seed", 42));
  const auto trips =
      GenerateTrips(city, args.GetInt("count", 2000), rng);
  if (const t2h::Status s = t2h::traj::SaveCsv(trips, out); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("wrote %zu %s-like trajectories to %s\n", trips.size(),
              city.name.c_str(), out.c_str());
  return 0;
}

int RunTrain(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) return Fail("--out is required");
  auto loaded = LoadData(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const std::vector<t2h::traj::Trajectory> corpus =
      std::move(loaded).value();
  const auto measure = t2h::dist::ParseMeasure(args.Get("measure", "frechet"));
  if (!measure.ok()) return Fail(measure.status().ToString());

  const int num_seeds =
      std::min<int>(args.GetInt("seeds", 60), corpus.size());
  const std::vector<t2h::traj::Trajectory> seeds(corpus.begin(),
                                                 corpus.begin() + num_seeds);
  std::printf("computing %dx%d exact %s distances...\n", num_seeds, num_seeds,
              t2h::dist::MeasureName(measure.value()).c_str());
  const auto distances = t2h::dist::PairwiseMatrix(
      seeds, t2h::dist::GetDistance(measure.value()));

  t2h::Rng rng(args.GetInt("seed", 42));
  auto created =
      t2h::core::Traj2Hash::Create(ConfigFromArgs(args), corpus, rng);
  if (!created.ok()) return Fail(created.status().ToString());
  auto model = std::move(created).value();
  model->PretrainGrids({}, rng);

  t2h::core::TrainingData data;
  data.seeds = seeds;
  data.seed_distances = distances;
  data.triplet_corpus = corpus;
  const int threads = args.GetInt("threads", 1);
  if (threads < 1) return Fail("--threads must be positive");
  std::printf("training (%d epochs + refinement, %d thread%s)...\n",
              model->config().epochs, threads, threads == 1 ? "" : "s");
  t2h::core::TrainerOptions trainer_options;
  trainer_options.num_threads = threads;
  t2h::core::Trainer trainer(model.get(), trainer_options);
  const auto report = trainer.Fit(data, rng);
  if (!report.ok()) return Fail(report.status().ToString());
  if (const t2h::Status s = model->Save(out); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("model written to %s (final WMSE %.5f, %d triplets used)\n",
              out.c_str(), report.value().epochs.back().wmse,
              report.value().num_triplets_used);
  return 0;
}

int RunQuery(const Args& args) {
  auto loaded = LoadData(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const std::vector<t2h::traj::Trajectory> corpus =
      std::move(loaded).value();
  const int query_id = args.GetInt("query-id", -1);
  if (query_id < 0 || query_id >= static_cast<int>(corpus.size())) {
    return Fail("--query-id out of range");
  }
  t2h::Rng rng(args.GetInt("seed", 42));
  auto created =
      t2h::core::Traj2Hash::Create(ConfigFromArgs(args), corpus, rng);
  if (!created.ok()) return Fail(created.status().ToString());
  auto model = std::move(created).value();
  if (const t2h::Status s = model->Load(args.Get("model", ""));
      !s.ok()) {
    return Fail(s.ToString() + " (same --data/--dim as training?)");
  }

  const int k = args.GetInt("k", 10);
  const std::string space = args.Get("space", "hybrid");
  const t2h::traj::Trajectory& query = corpus[query_id];
  std::vector<t2h::search::Neighbor> result;
  std::string how = space;
  if (space == "euclid") {
    result = t2h::search::TopKEuclidean(t2h::core::EmbedAll(*model, corpus),
                                        model->Embed(query), k + 1);
  } else if (space == "hamming" || space == "hybrid") {
    // All strategies return bit-identical results (DESIGN.md §9); --strategy
    // only picks the probe mechanics. Without it, the legacy spaces map to
    // their historical engines: hamming = brute scan, hybrid = radius-2.
    const auto strategy = t2h::search::ParseStrategy(
        args.Get("strategy", space == "hybrid" ? "radius2" : "brute"));
    if (!strategy.ok()) return Fail(strategy.status().ToString());
    const int mih_substrings = args.GetInt("mih-substrings", 0);
    if (mih_substrings < 0) return Fail("--mih-substrings must be >= 0");
    const std::vector<t2h::search::Code> codes =
        t2h::core::HashAll(*model, corpus);
    const t2h::search::Code query_code = model->HashCode(query);
    switch (strategy.value()) {
      case t2h::search::SearchStrategy::kBrute:
        result = t2h::search::TopKHamming(codes, query_code, k + 1);
        break;
      case t2h::search::SearchStrategy::kRadius2:
        result = t2h::search::HammingIndex(codes).HybridTopK(query_code,
                                                             k + 1);
        break;
      case t2h::search::SearchStrategy::kMih:
        result = t2h::search::MihIndex(codes, mih_substrings)
                     .TopK(query_code, k + 1);
        break;
    }
    how = space + "/" + t2h::search::StrategyName(strategy.value());
  } else {
    return Fail("--space must be euclid, hamming or hybrid");
  }
  std::printf("top-%d most similar to trajectory %d (%s space):\n", k,
              query_id, how.c_str());
  int printed = 0;
  for (const t2h::search::Neighbor& n : result) {
    if (n.index == query_id) continue;  // skip the query itself
    std::printf("  id=%-6lld distance=%.4f\n",
                static_cast<long long>(corpus[n.index].id), n.distance);
    if (++printed == k) break;
  }
  return 0;
}

int RunDistance(const Args& args) {
  auto loaded = LoadData(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const auto corpus = std::move(loaded).value();
  const int a = args.GetInt("a", -1);
  const int b = args.GetInt("b", -1);
  if (a < 0 || b < 0 || a >= static_cast<int>(corpus.size()) ||
      b >= static_cast<int>(corpus.size())) {
    return Fail("--a/--b out of range");
  }
  const auto& ta = corpus[a];
  const auto& tb = corpus[b];
  std::printf("DTW        %.2f\n", t2h::dist::Dtw(ta, tb));
  std::printf("Frechet    %.2f\n", t2h::dist::Frechet(ta, tb));
  std::printf("Hausdorff  %.2f\n", t2h::dist::Hausdorff(ta, tb));
  std::printf("ERP        %.2f\n", t2h::dist::Erp(ta, tb));
  std::printf("LCSS(100m) %.4f\n", t2h::dist::LcssDistance(ta, tb, 100.0));
  std::printf("EDR(100m)  %.2f\n", t2h::dist::Edr(ta, tb, 100.0));
  std::printf("endpoint lower bound %.2f\n",
              t2h::dist::EndpointLowerBound(ta, tb));
  return 0;
}

int RunServeBench(const Args& args) {
  // Self-describing startup: which kernel backend every scan below runs on.
  std::printf("%s\n", KernelIsaLine().c_str());
  auto loaded = LoadData(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const std::vector<t2h::traj::Trajectory> corpus =
      std::move(loaded).value();
  const int num_queries =
      std::min<int>(args.GetInt("queries", 64), corpus.size());
  if (num_queries < 1) return Fail("need at least one trajectory");

  t2h::Rng rng(args.GetInt("seed", 42));
  auto created =
      t2h::core::Traj2Hash::Create(ConfigFromArgs(args), corpus, rng);
  if (!created.ok()) return Fail(created.status().ToString());
  auto model = std::move(created).value();
  const std::string model_path = args.Get("model", "");
  if (!model_path.empty()) {
    if (const t2h::Status s = model->Load(model_path); !s.ok()) {
      return Fail(s.ToString() + " (same --data/--dim as training?)");
    }
  }

  const int threads = args.GetInt("threads", 4);
  const int shards = args.GetInt("shards", 4);
  const int k = args.GetInt("k", 10);
  const int rounds = args.GetInt("rounds", 3);
  if (threads < 1 || shards < 1 || k < 1 || rounds < 1) {
    return Fail("--threads/--shards/--k/--rounds must be positive");
  }
  const auto strategy =
      t2h::search::ParseStrategy(args.Get("strategy", "mih"));
  if (!strategy.ok()) return Fail(strategy.status().ToString());
  const int mih_substrings = args.GetInt("mih-substrings", 0);
  if (mih_substrings < 0) return Fail("--mih-substrings must be >= 0");
  const int deadline_ms = args.GetInt("deadline-ms", 0);
  const int queue_depth = args.GetInt("queue-depth", 0);
  if (deadline_ms < 0 || queue_depth < 0) {
    return Fail("--deadline-ms/--queue-depth must be >= 0");
  }
  const auto policy =
      t2h::serve::ParseOverloadPolicy(args.Get("overload", "reject"));
  if (!policy.ok()) return Fail(policy.status().ToString());
  const int replicas = args.GetInt("replicas", 0);
  if (replicas < 0) return Fail("--replicas must be >= 0");
  const std::string drill = args.Get("drill", "none");
  if (drill != "none" && drill != "rolling" && drill != "kill" &&
      drill != "netsplit") {
    return Fail("--drill must be none, rolling, kill or netsplit");
  }
  if ((drill == "rolling" || drill == "kill") && replicas < 2) {
    return Fail("--drill needs --replicas >= 2 (survivors must keep serving)");
  }
  const std::string transport = args.Get("transport", "inproc");
  if (transport != "inproc" && transport != "socket") {
    return Fail("--transport must be inproc or socket");
  }
  if (drill == "netsplit") {
    // A netsplit partitions the shipping network; replicas keep serving
    // reads from their applied state, so one replica suffices.
    if (transport != "socket") {
      return Fail("--drill netsplit needs --transport socket (there is no"
                  " network to sever in-process)");
    }
    if (replicas < 1) return Fail("--drill netsplit needs --replicas >= 1");
  }
  const int max_lag_records = args.GetInt("max-lag-records", 0);
  const double max_lag_ms = std::atof(args.Get("max-lag-ms", "0").c_str());
  if (max_lag_records < 0 || max_lag_ms < 0.0) {
    return Fail("--max-lag-records/--max-lag-ms must be >= 0");
  }
  // --query-dist uniform (historical first-N replay) or zipf:<s> (hot-key
  // skew: rank r of the first N trajectories drawn with P ∝ 1/(r+1)^s).
  const std::string query_dist = args.Get("query-dist", "uniform");
  double zipf_s = -1.0;
  if (query_dist.rfind("zipf:", 0) == 0) {
    zipf_s = std::atof(query_dist.substr(5).c_str());
    if (zipf_s < 0.0) return Fail("--query-dist zipf:<s> needs s >= 0");
  } else if (query_dist != "uniform") {
    return Fail("--query-dist must be uniform or zipf:<s>");
  }
  // Query front-end (DESIGN.md §15): --batch-wait-us >= 0 turns on encode
  // coalescing with that bounded wait (needs --clients, the concurrent
  // open-loop mode); --cache-entries > 0 turns on the epoch-keyed result
  // cache (engine side and, with --replicas, per-replica router caches).
  const int batch_wait_us = args.GetInt("batch-wait-us", -1);
  const int max_batch = args.GetInt("max-batch", 8);
  const int cache_entries = args.GetInt("cache-entries", 0);
  const int clients = args.GetInt("clients", 0);
  if (max_batch < 1) return Fail("--max-batch must be >= 1");
  if (cache_entries < 0 || clients < 0) {
    return Fail("--cache-entries/--clients must be >= 0");
  }
  if (batch_wait_us >= 0 && clients == 0) {
    return Fail("--batch-wait-us needs --clients >= 1 (coalescing batches"
                " concurrent Query() callers)");
  }
  // Quantized embedding store (DESIGN.md §17): --quantize 1 stores
  // embeddings as per-dim int8 and adds a round of two-stage re-rank
  // queries after the Hamming rounds.
  const int quantize_flag = args.GetInt("quantize", 0);
  if (quantize_flag != 0 && quantize_flag != 1) {
    return Fail("--quantize must be 0 or 1");
  }
  const bool quantize = quantize_flag == 1;
  const int rerank_candidates = args.GetInt("rerank-candidates", 0);
  if (rerank_candidates < 0) return Fail("--rerank-candidates must be >= 0");

  t2h::serve::QueryEngine engine(model.get(),
                                 {.num_threads = threads,
                                  .num_shards = shards,
                                  .strategy = strategy.value(),
                                  .mih_substrings = mih_substrings,
                                  .queue_depth = queue_depth,
                                  .overload_policy = policy.value(),
                                  .enable_coalescing = batch_wait_us >= 0,
                                  .max_batch = max_batch,
                                  .max_wait_us = batch_wait_us >= 0
                                      ? batch_wait_us
                                      : 0,
                                  .cache_entries = cache_entries,
                                  .quantize = quantize,
                                  .rerank_candidates = rerank_candidates});
  if (quantize) {
    // Self-describing startup, like the kernel-isa line: which embedding
    // store this run serves from and how wide the re-rank pool is.
    std::printf("quantize: int8 embedding store on,"
                " rerank candidates/shard %d\n",
                rerank_candidates > 0 ? rerank_candidates
                                      : std::max(8 * k, 64));
  }

  // With --snapshot, a readable snapshot replaces the encode-heavy
  // InsertAll; otherwise the database is built and then checkpointed (the
  // save retries with backoff: a transient IO failure should not waste the
  // encode work just done). A present-but-corrupt snapshot is an error —
  // silently rebuilding would mask data loss.
  const std::string snapshot_path = args.Get("snapshot", "");
  const std::string wal_path = args.Get("wal", "");
  if (replicas > 0 && wal_path.empty()) {
    return Fail("--replicas needs --wal: the WAL is the shipping stream");
  }
  t2h::Stopwatch ingest;
  bool restored = false;
  if (!wal_path.empty()) {
    // Durable mode: boot from snapshot + WAL replay, then keep logging.
    // Every mutation below (ingest and --churn) is fsynced before it is
    // acknowledged; `t2h_cli wal-replay --wal F` can inspect the log after.
    if (const t2h::Status s = engine.Recover(snapshot_path, wal_path);
        !s.ok()) {
      return Fail("cannot recover: " + s.ToString());
    }
    restored = engine.size() > 0;
  } else if (!snapshot_path.empty()) {
    const t2h::Status s = engine.LoadSnapshot(snapshot_path);
    if (s.ok()) {
      restored = true;
    } else if (s.code() != t2h::StatusCode::kIoError) {
      return Fail("cannot restore snapshot: " + s.ToString());
    }
  }
  if (!restored) {
    if (const t2h::Status s = engine.InsertAll(corpus); !s.ok()) {
      return Fail("ingest failed: " + s.ToString());
    }
    if (!snapshot_path.empty() && wal_path.empty()) {
      t2h::Rng retry_rng(args.GetInt("seed", 42) + 1);
      const t2h::Status s = t2h::RetryWithBackoff(
          t2h::RetryOptions{}, retry_rng,
          [&] { return engine.SaveSnapshot(snapshot_path); });
      if (!s.ok()) return Fail("cannot save snapshot: " + s.ToString());
      std::printf("snapshot written to %s\n", snapshot_path.c_str());
    }
  }
  std::printf("%s %d trajectories into %d shards in %.2f s\n",
              restored ? "restored" : "ingested", engine.size(), shards,
              ingest.ElapsedSeconds());
  if (engine.size() < num_queries) return Fail("snapshot smaller than --queries");

  // Query load over the first --queries trajectories of the database:
  // uniform replays them in order (the historical load); zipf draws
  // --queries ranks from that prefix so a few hot keys dominate, which is
  // what real query streams look like.
  std::vector<t2h::traj::Trajectory> queries;
  queries.reserve(num_queries);
  if (zipf_s >= 0.0) {
    const t2h::ZipfSampler sampler(num_queries, zipf_s);
    t2h::Rng query_rng(args.GetInt("seed", 42) + 3);
    for (int i = 0; i < num_queries; ++i) {
      queries.push_back(corpus[sampler.Sample(query_rng)]);
    }
  } else {
    queries.assign(corpus.begin(), corpus.begin() + num_queries);
  }
  auto run_round = [&] {
    t2h::serve::QueryOptions options;
    if (deadline_ms > 0) {
      options.deadline = t2h::Deadline::AfterMillis(deadline_ms);
    }
    // Shed queries also report complete=false; count only genuine
    // deadline expiries here (the shed total comes from the engine).
    int64_t incomplete = 0;
    if (clients > 0) {
      // Open-loop client mode: --clients threads each issue Query() over an
      // interleaved slice of the load. This is the shape the coalescer
      // batches (concurrent single-query arrivals) — QueryBatch below
      // already amortizes its encodes by construction.
      std::atomic<int64_t> bad{0};
      std::vector<std::thread> workers;
      workers.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&engine, &queries, &options, &bad, c, clients,
                              k] {
          for (size_t i = c; i < queries.size();
               i += static_cast<size_t>(clients)) {
            const t2h::serve::QueryResult r =
                engine.Query(queries[i], k, options);
            if (!r.complete &&
                r.status.code() != t2h::StatusCode::kUnavailable) {
              bad.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      incomplete = bad.load(std::memory_order_relaxed);
    } else {
      for (const t2h::serve::QueryResult& r :
           engine.QueryBatch(queries, k, options)) {
        if (!r.complete &&
            r.status.code() != t2h::StatusCode::kUnavailable) {
          ++incomplete;
        }
      }
    }
    return incomplete;
  };
  const int churn_ops = args.GetInt("churn", 0);
  if (churn_ops < 0) return Fail("--churn must be >= 0");

  run_round();  // warm-up
  engine.ResetStats();
  // With --churn, a mutator thread interleaves inserts / removes / updates
  // with the query rounds — the live-mutation serving shape (DESIGN.md §12).
  std::atomic<int64_t> mutations{0};
  std::thread mutator;
  if (churn_ops > 0) {
    mutator = std::thread([&engine, &corpus, &mutations, churn_ops, &args] {
      t2h::Rng mut_rng(args.GetInt("seed", 42) + 7);
      for (int i = 0; i < churn_ops; ++i) {
        const double dice = mut_rng.Uniform(0.0, 1.0);
        t2h::Status s;
        if (dice < 0.5) {
          const auto& t = corpus[i % corpus.size()];
          s = engine.Insert(t).status();
        } else {
          const int id = static_cast<int>(mut_rng.Uniform(
              0.0, static_cast<double>(engine.size())));
          s = dice < 0.75 ? engine.Remove(id)
                          : engine.Update(id, corpus[i % corpus.size()]);
        }
        // kNotFound just means the randomly picked id was already removed.
        if (s.ok()) mutations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  t2h::Stopwatch wall;
  int64_t incomplete = 0;
  for (int r = 0; r < rounds; ++r) incomplete += run_round();
  const double seconds = wall.ElapsedSeconds();
  if (mutator.joinable()) mutator.join();
  const int total = rounds * num_queries;

  std::printf("%d queries (top-%d, %d threads, %d shards, %s): %.1f QPS\n",
              total, k, threads, shards,
              t2h::search::StrategyName(strategy.value()), total / seconds);
  if (deadline_ms > 0 || queue_depth > 0) {
    std::printf("degraded: %lld partial/deadline-expired, %lld shed\n",
                static_cast<long long>(incomplete),
                static_cast<long long>(engine.shed_count()));
  }
  if (churn_ops > 0) {
    // The index is quiescent again: every query must now be bit-identical
    // to a brute-force oracle over the surviving entries.
    std::vector<int> oracle_ids;
    std::vector<t2h::search::Code> oracle_codes;
    for (int s = 0; s < engine.index().num_shards(); ++s) {
      for (const auto& entry : engine.index().shard(s).SnapshotEntries()) {
        oracle_ids.push_back(entry.id);
        oracle_codes.push_back(entry.code);
      }
    }
    bool exact = true;
    for (int q = 0; q < std::min(num_queries, 16) && exact; ++q) {
      const t2h::search::Code code = model->HashCode(corpus[q]);
      std::vector<t2h::search::Neighbor> want;
      for (size_t i = 0; i < oracle_codes.size(); ++i) {
        want.push_back({oracle_ids[i],
                        static_cast<double>(t2h::search::HammingDistance(
                            oracle_codes[i], code))});
      }
      std::sort(want.begin(), want.end(), t2h::search::NeighborLess);
      if (static_cast<int>(want.size()) > k) want.resize(k);
      const auto got = engine.index().QueryTopK(code, k);
      exact = got.size() == want.size();
      for (size_t i = 0; exact && i < want.size(); ++i) {
        exact = got[i].index == want[i].index &&
                got[i].distance == want[i].distance;
      }
    }
    std::printf("churn: %lld mutations applied concurrently; live %d of %d"
                " assigned ids; post-churn queries %s\n",
                static_cast<long long>(mutations.load()), engine.live_size(),
                engine.size(), exact ? "exact" : "NOT EXACT");
    if (!exact) return Fail("post-churn queries diverged from brute force");
  }
  std::printf("%s", engine.stats().ToString().c_str());
  if (batch_wait_us >= 0 || cache_entries > 0) {
    const t2h::serve::FrontendSnapshot fs = engine.frontend_stats();
    std::printf(
        "frontend: %llu batches (occupancy mean %.2f p50 %d p95 %d),"
        " cache %llu hits / %llu lookups (%llu stale)\n",
        static_cast<unsigned long long>(fs.occupancy.batches),
        fs.occupancy.mean, fs.occupancy.p50, fs.occupancy.p95,
        static_cast<unsigned long long>(fs.cache_hits),
        static_cast<unsigned long long>(fs.cache_lookups),
        static_cast<unsigned long long>(fs.cache_stale));
  }
  if (quantize) {
    // A round of Euclidean re-rank traffic through the two-stage quantized
    // re-ranker — the path --quantize exists for. Serial on purpose: the
    // per-query band/recheck counters below are the product, not QPS.
    t2h::Stopwatch rerank_wall;
    int64_t rerank_bad = 0;
    for (const auto& q : queries) {
      const t2h::serve::QueryResult r = engine.QueryRerank(q, k);
      if (!r.complete) ++rerank_bad;
    }
    const double rerank_seconds = rerank_wall.ElapsedSeconds();
    if (rerank_bad > 0) {
      return Fail("QueryRerank returned " + std::to_string(rerank_bad) +
                  " incomplete results");
    }
    const t2h::serve::QuantSnapshot qs = engine.quant_stats();
    std::printf(
        "quant: %llu rerank queries at %.1f QPS, resident %llu bytes,"
        " recheck rate %.4f, band width %.4f, %llu band violations\n",
        static_cast<unsigned long long>(qs.rerank_queries),
        queries.size() / rerank_seconds,
        static_cast<unsigned long long>(qs.resident_bytes),
        qs.requant_recheck_rate, qs.band_width,
        static_cast<unsigned long long>(qs.band_violations));
  }

  // --replicas: ship the primary's WAL to a replica group and route the
  // same query load through a health-aware ReadRouter (DESIGN.md §13),
  // optionally running a failover drill mid-burst. The primary keeps
  // mutating underneath (another --churn burst) so the replicas chase a
  // moving log; afterwards every replica must be caught up and bit-identical
  // to the primary — which the --churn block above already proved exact
  // against a brute-force oracle.
  double replica_qps = 0.0;
  int64_t replica_dropped = 0;
  int64_t replica_total = 0;
  std::vector<long long> replica_routed;
  std::vector<long long> replica_lag_records;
  std::vector<double> replica_lag_ms;
  long long replica_failovers = 0;
  long long replica_reconnects = 0;
  long long replica_stale_demotions = 0;
  bool replicas_caught_up = false;
  t2h::serve::ResultCache::Stats replica_cache;
  if (replicas > 0) {
    t2h::replica::Primary primary(engine.mutable_index(), wal_path);
    // --transport socket: ship over framed loopback TCP (DESIGN.md §16)
    // instead of the in-process cursor; same replication contract, plus a
    // network that can be severed (--drill netsplit).
    std::unique_ptr<t2h::replica::ShipServer> ship_server;
    if (transport == "socket") {
      ship_server = std::make_unique<t2h::replica::ShipServer>(&primary);
      if (const t2h::Status s = ship_server->Start(); !s.ok()) {
        return Fail("cannot start ship server: " + s.ToString());
      }
    }
    std::vector<std::unique_ptr<t2h::replica::Replica>> group;
    for (int i = 0; i < replicas; ++i) {
      const auto opts = t2h::replica::ReplicaOptions{.num_shards = shards};
      const std::string name = "replica-" + std::to_string(i);
      if (ship_server != nullptr) {
        t2h::replica::SocketTailerOptions topts;
        topts.seed = static_cast<uint64_t>(args.GetInt("seed", 42) + i);
        group.push_back(std::make_unique<t2h::replica::Replica>(
            &primary,
            std::make_unique<t2h::replica::SocketTransport>(
                "127.0.0.1", ship_server->port(), topts),
            opts, name));
      } else {
        group.push_back(
            std::make_unique<t2h::replica::Replica>(&primary, opts, name));
      }
      if (const t2h::Status s =
              group.back()->Bootstrap(wal_path + ".boot.snap");
          !s.ok()) {
        return Fail("replica bootstrap failed: " + s.ToString());
      }
    }
    std::vector<t2h::replica::Replica*> members;
    for (const auto& r : group) members.push_back(r.get());
    t2h::replica::ReadRouter router(
        members, {.max_attempts = replicas + 1,
                  .queue_depth = queue_depth,
                  .overload_policy = policy.value(),
                  .cache_entries = cache_entries,
                  .max_lag_records = max_lag_records,
                  .max_lag_ms = max_lag_ms});

    // Continuous ship loop: one thread tails the log for every replica.
    std::atomic<bool> stop_ship{false};
    std::thread shipper([&group, &stop_ship] {
      while (!stop_ship.load(std::memory_order_acquire)) {
        for (const auto& r : group) {
          if (r->state() != t2h::replica::ReplicaState::kDown) {
            (void)r->PollApplyOnce();
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    // The primary keeps committing while replicas serve (the replication
    // shape of --churn). Reuses the corpus; kNotFound from racing removes
    // is expected.
    std::atomic<bool> stop_churn{false};
    std::thread replica_mutator;
    if (churn_ops > 0) {
      replica_mutator = std::thread([&engine, &corpus, &stop_churn, &args] {
        t2h::Rng mut_rng(args.GetInt("seed", 42) + 11);
        while (!stop_churn.load(std::memory_order_acquire)) {
          const auto& t = corpus[mut_rng.UniformInt(
              0, static_cast<int>(corpus.size()) - 1)];
          if (mut_rng.Bernoulli(0.5)) {
            (void)engine.Insert(t);
          } else {
            (void)engine.Remove(mut_rng.UniformInt(0, engine.size() - 1));
          }
        }
      });
    }
    // Failover drill mid-burst: rolling = zero-downtime checkpoint+restart
    // of replica 0 through the router; kill = abrupt crash, then recovery
    // via a fresh bootstrap. Either way the survivors carry the load.
    std::thread drill_thread;
    if (drill == "rolling") {
      drill_thread = std::thread([&router, &wal_path] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const t2h::Status s =
            router.RollingRestart(0, wal_path + ".replica0.snap");
        if (!s.ok()) {
          std::fprintf(stderr, "rolling restart failed: %s\n",
                       s.ToString().c_str());
        }
      });
    } else if (drill == "kill") {
      drill_thread = std::thread([&router, &group, &wal_path] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        group[0]->SimulateCrash();  // router notices on the next query
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        router.MarkDown(0);
        if (const t2h::Status s =
                group[0]->Bootstrap(wal_path + ".boot.snap");
            s.ok()) {
          router.MarkHealthy(0);
        } else {
          std::fprintf(stderr, "replica re-bootstrap failed: %s\n",
                       s.ToString().c_str());
        }
      });
    } else if (drill == "netsplit") {
      // Partition drill: refuse new connections, then sever every live one.
      // Replicas keep serving reads from their applied state (stale but
      // healthy); tailers back off and reconnect once the partition heals,
      // resuming at their seq watermark — no re-bootstrap, no dropped query.
      t2h::replica::ShipServer* server = ship_server.get();
      drill_thread = std::thread([server] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        server->set_refuse_connections(true);
        server->Sever();
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        server->set_refuse_connections(false);
      });
    }

    std::vector<t2h::search::Code> query_codes;
    query_codes.reserve(queries.size());
    for (const auto& q : queries) query_codes.push_back(model->HashCode(q));
    t2h::Stopwatch replica_wall;
    for (int r = 0; r < rounds; ++r) {
      for (const t2h::search::Code& code : query_codes) {
        const t2h::replica::RoutedRead read = router.Query(code, k);
        ++replica_total;
        if (!read.status.ok()) ++replica_dropped;
      }
    }
    const double replica_seconds = replica_wall.ElapsedSeconds();
    if (drill_thread.joinable()) drill_thread.join();
    stop_churn.store(true, std::memory_order_release);
    if (replica_mutator.joinable()) replica_mutator.join();
    stop_ship.store(true, std::memory_order_release);
    shipper.join();

    // Drain: every replica must reach the primary's final commit seq, then
    // answer bit-identically to it.
    replicas_caught_up = true;
    for (const auto& r : group) {
      if (const t2h::Status s = r->CatchUp(); !s.ok()) {
        return Fail("replica " + r->name() +
                    " cannot catch up: " + s.ToString());
      }
      replicas_caught_up = replicas_caught_up &&
                           r->applied_seq() == primary.committed_seq();
    }
    bool identical = true;
    for (size_t q = 0; q < query_codes.size() && q < 16 && identical; ++q) {
      const auto want = engine.index().QueryTopK(query_codes[q], k);
      for (const auto& r : group) {
        const auto epoch = r->index();
        const auto got = epoch->QueryTopK(query_codes[q], k);
        identical = got.size() == want.size();
        for (size_t i = 0; identical && i < want.size(); ++i) {
          identical = got[i].index == want[i].index &&
                      got[i].distance == want[i].distance;
        }
        if (!identical) break;
      }
    }
    replica_qps = replica_total / replica_seconds;
    for (int i = 0; i < replicas; ++i) {
      replica_routed.push_back(router.routed_to(i));
      replica_lag_records.push_back(group[i]->lag_records());
      replica_lag_ms.push_back(group[i]->lag_ms());
    }
    replica_failovers = router.failovers();
    replica_stale_demotions = router.stale_demotions();
    replica_cache = router.cache_stats();
    for (const auto& r : group) {
      replica_reconnects +=
          r->transport().counters().reconnects.load(std::memory_order_acquire);
    }
    std::printf(
        "replication: %d replicas over %s, %lld routed reads at %.1f QPS,"
        " %lld dropped, %lld failovers, %lld reconnects, %lld stale"
        " demotions (drill=%s); caught up: %s; results %s\n",
        replicas, transport.c_str(), static_cast<long long>(replica_total),
        replica_qps, static_cast<long long>(replica_dropped),
        replica_failovers, replica_reconnects, replica_stale_demotions,
        drill.c_str(), replicas_caught_up ? "yes" : "NO",
        identical ? "bit-identical to primary" : "DIVERGED");
    if (!identical) return Fail("replica results diverged from the primary");
    if (!replicas_caught_up) return Fail("a replica failed to catch up");
    // Every drill must be invisible to callers: rolling/kill fail over onto
    // survivors, netsplit serves from applied state — no query may surface
    // an error.
    if (drill != "none" && replica_dropped > 0) {
      return Fail("failover drill dropped " +
                  std::to_string(replica_dropped) +
                  " queries; zero-downtime contract violated");
    }
    if (drill == "netsplit") {
      // The partition healed before the drain, so every tailer must have
      // re-handshaked at its watermark — without refetching a snapshot.
      if (replica_reconnects < replicas) {
        return Fail("netsplit drill: expected every replica to reconnect,"
                    " saw " + std::to_string(replica_reconnects) +
                    " reconnects across " + std::to_string(replicas));
      }
      for (const auto& r : group) {
        if (r->transport().counters().snapshots_fetched.load(
                std::memory_order_acquire) != 1) {
          return Fail("netsplit drill: " + r->name() +
                      " re-bootstrapped; the log still covered its watermark"
                      " so reconnect alone should have caught it up");
        }
      }
    }
  }

  if (!wal_path.empty() && !snapshot_path.empty()) {
    // Fold the log into the snapshot so the next boot replays nothing.
    if (const t2h::Status s = engine.Checkpoint(snapshot_path); !s.ok()) {
      return Fail("checkpoint failed: " + s.ToString());
    }
    std::printf("checkpointed to %s (WAL reset)\n", snapshot_path.c_str());
  }

  const std::string stats_json = args.Get("stats-json", "");
  if (!stats_json.empty()) {
    const auto snapshot = engine.stats();
    std::string json = "{\n  \"bench\": \"serve\",\n";
    char buf[256];
    const t2h::KernelIsaSelection isa_sel = t2h::CurrentKernelIsa();
    std::snprintf(buf, sizeof(buf),
                  "  \"kernel_isa\": {\"selected\": \"%s\", \"detected\":"
                  " \"%s\", \"source\": \"%s\"},\n",
                  t2h::KernelIsaName(isa_sel.selected),
                  t2h::KernelIsaName(isa_sel.detected),
                  isa_sel.source.c_str());
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"threads\": %d, \"shards\": %d, \"k\": %d,"
                  " \"queries\": %d, \"qps\": %.1f,\n",
                  threads, shards, k, total, total / seconds);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"size\": %d, \"live_size\": %d, \"churn_mutations\":"
                  " %lld,\n",
                  engine.size(), engine.live_size(),
                  static_cast<long long>(mutations.load()));
    json += buf;
    if (replicas > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  \"replication\": {\"replicas\": %d, \"transport\":"
                    " \"%s\", \"read_qps\": %.1f, \"dropped\": %lld,"
                    " \"failovers\": %lld, \"reconnects\": %lld,"
                    " \"stale_demotions\": %lld, \"caught_up\": %s,"
                    " \"drill\": \"%s\",\n",
                    replicas, transport.c_str(), replica_qps,
                    static_cast<long long>(replica_dropped),
                    replica_failovers, replica_reconnects,
                    replica_stale_demotions,
                    replicas_caught_up ? "true" : "false", drill.c_str());
      json += buf;
      json += "    \"lag_records\": [";
      for (int i = 0; i < replicas; ++i) {
        std::snprintf(buf, sizeof(buf), "%s%lld", i ? ", " : "",
                      replica_lag_records[i]);
        json += buf;
      }
      json += "], \"lag_ms\": [";
      for (int i = 0; i < replicas; ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.2f", i ? ", " : "",
                      replica_lag_ms[i]);
        json += buf;
      }
      json += "], \"routed\": [";
      for (int i = 0; i < replicas; ++i) {
        std::snprintf(buf, sizeof(buf), "%s%lld", i ? ", " : "",
                      replica_routed[i]);
        json += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "], \"cache_lookups\": %llu, \"cache_hits\": %llu},\n",
                    static_cast<unsigned long long>(replica_cache.lookups),
                    static_cast<unsigned long long>(replica_cache.hits));
      json += buf;
    }
    json += "  \"frontend\": " +
            t2h::serve::FrontendJson(engine.frontend_stats()) + ",\n";
    json += "  \"quant\": " +
            t2h::serve::QuantJson(engine.quant_stats()) + ",\n";
    json += "  \"stages\": {\n";
    for (int i = 0; i < t2h::serve::kNumStages; ++i) {
      const auto& s =
          snapshot.Of(static_cast<t2h::serve::Stage>(i));
      std::snprintf(
          buf, sizeof(buf),
          "    \"%s\": {\"count\": %llu, \"mean_us\": %.2f, \"p50_us\":"
          " %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f}%s\n",
          t2h::serve::StageName(static_cast<t2h::serve::Stage>(i)).c_str(),
          static_cast<unsigned long long>(s.count), s.mean_us, s.p50_us,
          s.p95_us, s.p99_us, s.max_us,
          i + 1 < t2h::serve::kNumStages ? "," : "");
      json += buf;
    }
    json += "  }\n}\n";
    if (const t2h::Status s = t2h::AtomicWriteFile(stats_json, json);
        !s.ok()) {
      return Fail("cannot write --stats-json: " + s.ToString());
    }
    std::printf("stats written to %s\n", stats_json.c_str());
  }
  return 0;
}

int RunWalReplay(const Args& args) {
  const std::string path = args.Get("wal", "");
  if (path.empty()) return Fail("--wal is required");
  // Strict parse: --from-seq is an operator-facing cut point, and a typo
  // ("1O0") silently parsed as 1 would replay the wrong suffix.
  uint64_t from_seq = 0;
  if (const std::string from = args.Get("from-seq", ""); !from.empty()) {
    const auto parsed = t2h::ParseUint64(from);
    if (!parsed.ok()) {
      return Fail("--from-seq must be a non-negative integer, got '" + from +
                  "'");
    }
    from_seq = parsed.value();
  }
  // Read-only walk: prints what boot-time recovery would replay without
  // touching the file (Wal::Open would truncate a torn tail; this does not).
  const auto replayed = t2h::ingest::Wal::Replay(path);
  if (!replayed.ok()) return Fail(replayed.status().ToString());
  const t2h::ingest::WalReplay& replay = replayed.value();
  size_t skipped = 0;
  size_t shown = 0;
  uint64_t first_shown = 0;
  for (const t2h::ingest::WalRecord& r : replay.records) {
    if (r.seq < from_seq) {
      ++skipped;
      continue;
    }
    if (shown == 0) first_shown = r.seq;
    ++shown;
    if (r.type == t2h::ingest::WalRecordType::kRemove) {
      std::printf("seq=%-8llu %-6s id=%d\n",
                  static_cast<unsigned long long>(r.seq),
                  t2h::ingest::WalRecordTypeName(r.type), r.id);
    } else {
      std::printf("seq=%-8llu %-6s id=%-8d bits=%d emb_len=%zu\n",
                  static_cast<unsigned long long>(r.seq),
                  t2h::ingest::WalRecordTypeName(r.type), r.id,
                  r.code.num_bits, r.embedding.size());
    }
  }
  if (skipped > 0) {
    std::printf("skipped %zu records below seq=%llu\n", skipped,
                static_cast<unsigned long long>(from_seq));
  }
  if (shown == 0) {
    std::printf("replayed 0 records, durable_bytes=%llu\n",
                static_cast<unsigned long long>(replay.valid_bytes));
  } else {
    std::printf("replayed seq=%llu..%llu (%zu records),"
                " durable_bytes=%llu\n",
                static_cast<unsigned long long>(first_shown),
                static_cast<unsigned long long>(replay.last_seq), shown,
                static_cast<unsigned long long>(replay.valid_bytes));
  }
  if (replay.tail_truncated) {
    // A torn tail is a real (if expected) loss signal: the final append was
    // interrupted and its mutation was never acknowledged. Exit non-zero so
    // scripts notice; recovery (Wal::Open) will truncate the tail.
    std::fprintf(stderr,
                 "warning: torn tail after byte %llu — a crash interrupted"
                 " the final append; recovery will truncate it\n",
                 static_cast<unsigned long long>(replay.valid_bytes));
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  static const std::map<std::string, std::set<std::string>> kKnownFlags = {
      {"generate", {"out", "city", "count", "max-points", "seed"}},
      {"train",
       {"data", "out", "measure", "seeds", "epochs", "dim", "seed",
        "threads", "kernel-isa"}},
      {"query",
       {"data", "model", "query-id", "k", "space", "dim", "seed", "strategy",
        "mih-substrings", "kernel-isa"}},
      {"distance", {"data", "a", "b"}},
      {"serve-bench",
       {"data", "model", "threads", "shards", "k", "queries", "rounds",
        "dim", "seed", "strategy", "mih-substrings", "deadline-ms",
        "queue-depth", "overload", "snapshot", "wal", "churn",
        "query-dist", "replicas", "drill", "transport", "max-lag-records",
        "max-lag-ms", "stats-json", "kernel-isa",
        "batch-wait-us", "max-batch", "cache-entries", "clients",
        "quantize", "rerank-candidates"}},
      {"wal-replay", {"wal", "from-seq"}},
      {"version", {"kernel-isa"}},
  };
  const auto known = kKnownFlags.find(command);
  if (known == kKnownFlags.end()) return Usage();
  if (RejectBadFlags(args, known->second)) return 2;
  if (const t2h::Status s = ApplyKernelIsaFlag(args); !s.ok()) {
    return Fail("--kernel-isa: " + s.ToString());
  }
  if (command == "version") return RunVersion(args);
  if (command == "generate") return RunGenerate(args);
  if (command == "train") return RunTrain(args);
  if (command == "query") return RunQuery(args);
  if (command == "distance") return RunDistance(args);
  if (command == "serve-bench") return RunServeBench(args);
  if (command == "wal-replay") return RunWalReplay(args);
  return Usage();
}
